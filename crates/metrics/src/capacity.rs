//! Loss of capacity — the utilization-side companion to slowdown.
//!
//! Raw utilization conflates two different kinds of idleness: processors
//! idle because *nothing is waiting* (harmless) and processors idle
//! *while jobs sit in the queue* (the scheduler's failure to pack — what
//! backfilling exists to fix). **Loss of capacity** (Feitelson's κ) counts
//! only the second kind: the fraction of processor-seconds left idle while
//! at least one job was waiting.

use crate::outcome::JobOutcome;
use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// Breakdown of a schedule's capacity usage over its busy horizon
/// (first arrival → last completion).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityReport {
    /// Fraction of capacity doing real work.
    pub utilized: f64,
    /// Fraction idle while the queue was empty (blameless).
    pub idle_no_demand: f64,
    /// Fraction idle while jobs were waiting — the loss of capacity κ.
    pub lost: f64,
}

/// Compute the capacity breakdown of a schedule.
///
/// Sweeps the schedule's events; within each inter-event interval the
/// number of running processors and waiting jobs is constant, so the
/// integral is exact.
pub fn capacity_report(outcomes: &[JobOutcome], nodes: u32) -> CapacityReport {
    assert!(nodes > 0, "machine size must be positive");
    if outcomes.is_empty() {
        return CapacityReport {
            utilized: 0.0,
            idle_no_demand: 0.0,
            lost: 0.0,
        };
    }

    // Event deltas: (time, running-procs delta, waiting-jobs delta).
    let mut events: Vec<(SimTime, i64, i64)> = Vec::with_capacity(outcomes.len() * 3);
    for o in outcomes {
        events.push((o.job.arrival, 0, 1));
        events.push((o.start, o.job.width as i64, -1));
        events.push((o.end(), -(o.job.width as i64), 0));
    }
    events.sort_by_key(|&(t, dp, _)| (t, dp)); // releases before claims at equal t
    let horizon_start = outcomes
        .iter()
        .map(|o| o.job.arrival)
        .min()
        .expect("non-empty");
    let horizon_end = outcomes.iter().map(|o| o.end()).max().expect("non-empty");
    let total = horizon_end.since(horizon_start).as_secs() as u128 * nodes as u128;
    if total == 0 {
        return CapacityReport {
            utilized: 0.0,
            idle_no_demand: 0.0,
            lost: 0.0,
        };
    }

    let mut busy_int: u128 = 0;
    let mut lost_int: u128 = 0;
    let mut running: i64 = 0;
    let mut waiting: i64 = 0;
    let mut prev = horizon_start;
    for (t, dp, dw) in events {
        let dt = t.since(prev).as_secs() as u128;
        if dt > 0 {
            busy_int += running as u128 * dt;
            if waiting > 0 {
                lost_int += (nodes as i64 - running).max(0) as u128 * dt;
            }
            prev = t;
        }
        running += dp;
        waiting += dw;
        debug_assert!(running >= 0 && waiting >= 0, "negative sweep state");
    }
    let utilized = busy_int as f64 / total as f64;
    let lost = lost_int as f64 / total as f64;
    CapacityReport {
        utilized,
        lost,
        idle_no_demand: (1.0 - utilized - lost).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{JobId, SimSpan};
    use workload::Job;

    fn outcome(arrival: u64, runtime: u64, width: u32, start: u64) -> JobOutcome {
        JobOutcome::new(
            Job {
                id: JobId(0),
                arrival: SimTime::new(arrival),
                runtime: SimSpan::new(runtime),
                estimate: SimSpan::new(runtime),
                width,
            },
            SimTime::new(start),
        )
    }

    #[test]
    fn fully_packed_schedule_has_no_loss() {
        // 8/8 procs busy the whole horizon.
        let outcomes = vec![outcome(0, 100, 8, 0), outcome(0, 100, 8, 100)];
        let r = capacity_report(&outcomes, 8);
        assert!((r.utilized - 1.0).abs() < 1e-12);
        assert_eq!(r.lost, 0.0);
        assert_eq!(r.idle_no_demand, 0.0);
    }

    #[test]
    fn idle_with_waiting_job_is_lost_capacity() {
        // Job 2 (8-wide) waits on [0, 100) while only 4 procs run:
        // 4 procs * 100 s lost of 8 * 200 total -> 0.25.
        let outcomes = vec![outcome(0, 100, 4, 0), outcome(0, 100, 8, 100)];
        let r = capacity_report(&outcomes, 8);
        assert!((r.lost - 0.25).abs() < 1e-12, "lost {}", r.lost);
        // Work: 400 + 800 = 1200 of 1600 -> 0.75 utilized; nothing blameless.
        assert!((r.utilized - 0.75).abs() < 1e-12);
        assert!(r.idle_no_demand.abs() < 1e-12);
    }

    #[test]
    fn idle_without_demand_is_blameless() {
        // One 4-wide job, starts immediately: the other 4 procs idle with
        // an empty queue.
        let outcomes = vec![outcome(0, 100, 4, 0)];
        let r = capacity_report(&outcomes, 8);
        assert_eq!(r.lost, 0.0);
        assert!((r.utilized - 0.5).abs() < 1e-12);
        assert!((r.idle_no_demand - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gap_between_batches_is_blameless() {
        // Busy [0,100), idle [100,200) with empty queue, busy [200,300).
        let outcomes = vec![outcome(0, 100, 8, 0), outcome(200, 100, 8, 200)];
        let r = capacity_report(&outcomes, 8);
        assert_eq!(r.lost, 0.0);
        assert!((r.idle_no_demand - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let outcomes = vec![
            outcome(0, 50, 3, 0),
            outcome(10, 200, 6, 50),
            outcome(20, 30, 2, 250),
        ];
        let r = capacity_report(&outcomes, 8);
        let sum = r.utilized + r.lost + r.idle_no_demand;
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(r.lost > 0.0, "the 6-wide job waited while procs idled");
    }

    #[test]
    fn empty_schedule() {
        let r = capacity_report(&[], 8);
        assert_eq!(r.utilized, 0.0);
        assert_eq!(r.lost, 0.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let outcomes = vec![outcome(0, 50, 3, 0), outcome(10, 200, 6, 50)];
        let r = capacity_report(&outcomes, 8);
        let text = serde_json::to_string(&r).unwrap();
        let back: CapacityReport = serde_json::from_str(&text).unwrap();
        assert_eq!(r, back);
    }
}
