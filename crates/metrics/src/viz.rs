//! Terminal visualizations: occupancy charts and Gantt views.
//!
//! The paper's mental model is the "2D chart" of processors × time; being
//! able to *see* a schedule catches bugs and explains results faster than
//! any aggregate. These renderers are deterministic text, so they are also
//! used in documentation and debugging sessions.

use crate::outcome::JobOutcome;
use crate::timeseries::TimeSeries;
use simcore::{SimSpan, SimTime};

/// Render a time series as a one-line unicode sparkline
/// (`▁▂▃▄▅▆▇█`), scaled to the series' own maximum.
pub fn sparkline(series: &TimeSeries) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let peak = series.peak();
    if series.is_empty() || peak <= 0.0 {
        return "▁".repeat(series.len());
    }
    series
        .values()
        .iter()
        .map(|&v| {
            let idx = ((v / peak) * (LEVELS.len() as f64 - 1.0)).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

/// Render a matrix as a shaded text heatmap (rows × columns), scaled to
/// the matrix's own maximum. Used for the hour-of-day × day-of-week
/// arrival heatmaps of workload characterization.
pub fn heatmap(rows: &[Vec<f64>], row_labels: &[&str]) -> String {
    const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
    assert_eq!(rows.len(), row_labels.len(), "one label per row");
    let peak = rows
        .iter()
        .flat_map(|r| r.iter())
        .cloned()
        .fold(0.0f64, f64::max);
    let mut out = String::new();
    for (row, label) in rows.iter().zip(row_labels) {
        out.push_str(&format!("{label:>4} "));
        for &v in row {
            let idx = if peak <= 0.0 {
                0
            } else {
                ((v / peak) * (SHADES.len() as f64 - 1.0)).round() as usize
            };
            out.push(SHADES[idx.min(SHADES.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

/// Render a schedule as an ASCII Gantt chart: one row per job (in start
/// order), time flowing right, `#` for running and `.` for waiting.
/// `columns` is the chart width in characters. Intended for small
/// schedules (≤ a few dozen jobs); larger inputs are truncated with a note.
pub fn gantt(outcomes: &[JobOutcome], columns: usize) -> String {
    const MAX_ROWS: usize = 40;
    assert!(columns >= 10, "gantt needs at least 10 columns");
    if outcomes.is_empty() {
        return "(empty schedule)\n".to_string();
    }
    let first = outcomes
        .iter()
        .map(|o| o.job.arrival)
        .min()
        .expect("non-empty");
    let last = outcomes.iter().map(|o| o.end()).max().expect("non-empty");
    let span = last.since(first).as_secs().max(1);
    let scale = |t: SimTime| -> usize {
        ((t.since(first).as_secs() as u128 * (columns as u128 - 1)) / span as u128) as usize
    };

    let mut rows: Vec<&JobOutcome> = outcomes.iter().collect();
    rows.sort_by_key(|o| (o.start, o.id()));
    let truncated = rows.len() > MAX_ROWS;
    rows.truncate(MAX_ROWS);

    let mut out = String::new();
    out.push_str(&format!(
        "time: {first} .. {last} ({}), one column ≈ {}\n",
        last.since(first),
        SimSpan::new(span / columns as u64)
    ));
    for o in rows {
        let a = scale(o.job.arrival);
        let s = scale(o.start);
        let e = scale(o.end()).max(s);
        let mut line = vec![' '; columns];
        for (i, c) in line.iter_mut().enumerate() {
            if i >= a && i < s {
                *c = '.';
            } else if i >= s && i <= e {
                *c = '#';
            }
        }
        out.push_str(&format!(
            "{:>6} |{}| w={}\n",
            format!("#{}", o.id().0),
            line.iter().collect::<String>(),
            o.job.width
        ));
    }
    if truncated {
        out.push_str(&format!("... ({} more jobs)\n", outcomes.len() - MAX_ROWS));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::utilization_series;
    use simcore::JobId;
    use workload::Job;

    fn outcome(id: u32, arrival: u64, runtime: u64, width: u32, start: u64) -> JobOutcome {
        JobOutcome::new(
            Job {
                id: JobId(id),
                arrival: SimTime::new(arrival),
                runtime: SimSpan::new(runtime),
                estimate: SimSpan::new(runtime),
                width,
            },
            SimTime::new(start),
        )
    }

    #[test]
    fn sparkline_scales_to_peak() {
        let outcomes = vec![outcome(0, 0, 50, 8, 0), outcome(1, 50, 50, 4, 50)];
        let ts = utilization_series(&outcomes, 8, SimSpan::new(50));
        let s = sparkline(&ts);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0], '█', "full bin should be the top glyph");
        assert!(chars[1] < chars[0], "half-full bin should be lower");
    }

    #[test]
    fn sparkline_of_empty_or_flat_series() {
        let ts = utilization_series(&[], 8, SimSpan::new(10));
        assert_eq!(sparkline(&ts), "");
    }

    #[test]
    fn gantt_shows_wait_and_run_phases() {
        let outcomes = vec![outcome(0, 0, 100, 8, 0), outcome(1, 0, 100, 8, 100)];
        let chart = gantt(&outcomes, 20);
        assert!(chart.contains("#0"));
        assert!(chart.contains("#1"));
        // Job 1 waited (dots) then ran (hashes).
        let line1 = chart
            .lines()
            .find(|l| l.contains("#1 "))
            .unwrap_or_else(|| chart.lines().nth(2).unwrap());
        assert!(line1.contains('.'), "wait phase missing: {line1}");
        assert!(line1.contains('#'), "run phase missing: {line1}");
    }

    #[test]
    fn gantt_truncates_large_schedules() {
        let outcomes: Vec<JobOutcome> = (0..60)
            .map(|i| outcome(i, 0, 10, 1, (i as u64) * 10))
            .collect();
        let chart = gantt(&outcomes, 40);
        assert!(chart.contains("more jobs"));
        assert!(chart.lines().count() <= 45);
    }

    #[test]
    fn heatmap_shades_scale_to_peak() {
        let rows = vec![vec![0.0, 5.0, 10.0], vec![10.0, 0.0, 2.5]];
        let h = heatmap(&rows, &["a", "b"]);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('█'), "{h}");
        assert!(lines[0].ends_with('█'));
        assert!(lines[1].contains('█'));
        // Zero cells are blank.
        assert!(lines[0].contains("a"));
    }

    #[test]
    fn heatmap_of_all_zero_matrix_is_blank() {
        let rows = vec![vec![0.0; 4]];
        let h = heatmap(&rows, &["z"]);
        assert!(!h.contains('█'));
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn heatmap_rejects_label_mismatch() {
        heatmap(&[vec![1.0]], &[]);
    }

    #[test]
    fn gantt_of_empty_schedule() {
        assert_eq!(gantt(&[], 40), "(empty schedule)\n");
    }

    #[test]
    #[should_panic(expected = "at least 10 columns")]
    fn gantt_rejects_tiny_width() {
        gantt(&[outcome(0, 0, 1, 1, 0)], 3);
    }
}
