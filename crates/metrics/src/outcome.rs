//! Per-job scheduling outcomes and the paper's job-level metrics.
//!
//! A simulation reduces to one [`JobOutcome`] per job; from it derive:
//!
//! * **wait time** — `start − arrival`;
//! * **turnaround time** — `end − arrival = wait + runtime`;
//! * **bounded slowdown** — `(wait + max(runtime, τ)) / max(runtime, τ)`
//!   with the paper's τ = 10 s threshold, which caps the leverage of very
//!   short jobs on the average.

use serde::{Deserialize, Serialize};
use simcore::{JobId, SimSpan, SimTime};
use workload::Job;

/// The bounded-slowdown threshold (10 seconds, per the paper and
/// Mu'alem–Feitelson's original definition).
pub const BOUNDED_SLOWDOWN_THRESHOLD_SECS: u64 = 10;

/// What happened to one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job as submitted (arrival, runtime, estimate, width).
    pub job: Job,
    /// When the scheduler first started it.
    pub start: SimTime,
    /// When it finally completed. For a job that ran uninterrupted this is
    /// `start + runtime`; a preempted job completes later (the suspended
    /// spans count as waiting).
    end: SimTime,
}

impl JobOutcome {
    /// Construct an uninterrupted outcome, checking `start ≥ arrival`.
    pub fn new(job: Job, start: SimTime) -> Self {
        assert!(start >= job.arrival, "{} started before it arrived", job.id);
        JobOutcome {
            job,
            start,
            end: start + job.runtime,
        }
    }

    /// Construct an outcome with an explicit completion instant (for
    /// preemptive schedules). Requires `end ≥ start + runtime`: suspension
    /// can only push completion later.
    pub fn with_end(job: Job, start: SimTime, end: SimTime) -> Self {
        assert!(start >= job.arrival, "{} started before it arrived", job.id);
        assert!(
            end >= start + job.runtime,
            "{} completed before its work was done",
            job.id
        );
        JobOutcome { job, start, end }
    }

    /// The job's identifier.
    pub fn id(&self) -> JobId {
        self.job.id
    }

    /// Completion instant.
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Total time the job was not running: queue wait plus (for preempted
    /// jobs) suspended time. `end − arrival − runtime`.
    pub fn wait(&self) -> SimSpan {
        self.end.since(self.job.arrival) - self.job.runtime
    }

    /// Turnaround (`end − arrival`).
    pub fn turnaround(&self) -> SimSpan {
        self.end().since(self.job.arrival)
    }

    /// Bounded slowdown with the standard 10 s threshold. Always ≥ 1.
    pub fn bounded_slowdown(&self) -> f64 {
        self.bounded_slowdown_with(SimSpan::new(BOUNDED_SLOWDOWN_THRESHOLD_SECS))
    }

    /// Bounded slowdown with an explicit threshold τ:
    /// `(wait + max(runtime, τ)) / max(runtime, τ)`.
    pub fn bounded_slowdown_with(&self, tau: SimSpan) -> f64 {
        let denom = self.job.runtime.max(tau).max(SimSpan::SECOND).as_secs_f64();
        (self.wait().as_secs_f64() + denom) / denom
    }

    /// Raw (unbounded) slowdown `turnaround / runtime`, guarding zero
    /// runtimes. Reported alongside the bounded variant in ablations.
    pub fn slowdown(&self) -> f64 {
        let rt = self.job.runtime.as_secs().max(1) as f64;
        (self.wait().as_secs_f64() + self.job.runtime.as_secs_f64()) / rt
    }

    /// True if the job was suspended at least once.
    pub fn was_preempted(&self) -> bool {
        self.end > self.start + self.job.runtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(arrival: u64, runtime: u64, start: u64) -> JobOutcome {
        JobOutcome::new(
            Job {
                id: JobId(1),
                arrival: SimTime::new(arrival),
                runtime: SimSpan::new(runtime),
                estimate: SimSpan::new(runtime),
                width: 4,
            },
            SimTime::new(start),
        )
    }

    #[test]
    fn derived_times() {
        let o = outcome(100, 50, 130);
        assert_eq!(o.wait(), SimSpan::new(30));
        assert_eq!(o.end(), SimTime::new(180));
        assert_eq!(o.turnaround(), SimSpan::new(80));
    }

    #[test]
    fn zero_wait_job() {
        let o = outcome(100, 50, 100);
        assert_eq!(o.wait(), SimSpan::ZERO);
        assert!((o.bounded_slowdown() - 1.0).abs() < 1e-12);
        assert!((o.slowdown() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_slowdown_matches_definition_for_long_jobs() {
        // runtime 100 > tau: slowdown = (wait + runtime)/runtime.
        let o = outcome(0, 100, 300);
        assert!((o.bounded_slowdown() - 4.0).abs() < 1e-12);
        assert!((o.slowdown() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_slowdown_caps_short_job_leverage() {
        // runtime 1 s, wait 99 s. Unbounded slowdown = 100; bounded uses
        // tau = 10: (99 + 10)/10 = 10.9.
        let o = outcome(0, 1, 99);
        assert!((o.slowdown() - 100.0).abs() < 1e-12);
        assert!((o.bounded_slowdown() - 10.9).abs() < 1e-12);
    }

    #[test]
    fn custom_threshold() {
        let o = outcome(0, 1, 99);
        let s = o.bounded_slowdown_with(SimSpan::new(100));
        assert!((s - 1.99).abs() < 1e-12);
    }

    #[test]
    fn slowdown_is_at_least_one() {
        for (a, r, s) in [(0u64, 10u64, 0u64), (5, 1, 5), (0, 10_000, 123_456)] {
            let o = outcome(a, r, s.max(a));
            assert!(o.bounded_slowdown() >= 1.0);
            assert!(o.slowdown() >= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "started before it arrived")]
    fn rejects_clairvoyant_start() {
        outcome(100, 10, 50);
    }

    #[test]
    fn preempted_outcome_counts_suspension_as_wait() {
        let job = Job {
            id: JobId(1),
            arrival: SimTime::new(0),
            runtime: SimSpan::new(100),
            estimate: SimSpan::new(100),
            width: 4,
        };
        // Started at 10, ran 40 s, suspended 50 s, ran 60 s: end at 160.
        let o = JobOutcome::with_end(job, SimTime::new(10), SimTime::new(160));
        assert!(o.was_preempted());
        assert_eq!(o.end(), SimTime::new(160));
        assert_eq!(o.turnaround(), SimSpan::new(160));
        // wait = 160 - 0 - 100 = 60 (10 queued + 50 suspended).
        assert_eq!(o.wait(), SimSpan::new(60));
        let plain = JobOutcome::new(job, SimTime::new(10));
        assert!(!plain.was_preempted());
        assert_eq!(plain.wait(), SimSpan::new(10));
    }

    #[test]
    #[should_panic(expected = "completed before its work")]
    fn with_end_rejects_too_early_completion() {
        let job = Job {
            id: JobId(1),
            arrival: SimTime::new(0),
            runtime: SimSpan::new(100),
            estimate: SimSpan::new(100),
            width: 4,
        };
        JobOutcome::with_end(job, SimTime::new(10), SimTime::new(50));
    }
}
