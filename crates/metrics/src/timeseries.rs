//! Time-binned series derived from schedules.
//!
//! The paper reports steady-state averages; operators read *time series* —
//! utilization and queue depth over the week. This module bins a
//! schedule's outcomes into fixed windows and produces both, the basis of
//! the Gantt/occupancy views in [`crate::viz`].

use crate::outcome::JobOutcome;
use simcore::{SimSpan, SimTime};

/// A fixed-bin time series over a schedule's horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    origin: SimTime,
    bin: SimSpan,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Assemble a series from raw parts (for adapters that bin their own
    /// data, e.g. the driver's event journal).
    pub fn from_parts(origin: SimTime, bin: SimSpan, values: Vec<f64>) -> Self {
        assert!(!bin.is_zero(), "need a positive bin width");
        TimeSeries {
            origin,
            bin,
            values,
        }
    }

    /// Start of the series.
    pub fn origin(&self) -> SimTime {
        self.origin
    }

    /// Bin width.
    pub fn bin(&self) -> SimSpan {
        self.bin
    }

    /// Bin values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series has no bins.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean of all bins (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Peak bin value (0 when empty).
    pub fn peak(&self) -> f64 {
        self.values.iter().cloned().fold(0.0, f64::max)
    }
}

fn horizon(outcomes: &[JobOutcome]) -> Option<(SimTime, SimTime)> {
    let first = outcomes.iter().map(|o| o.job.arrival).min()?;
    let last = outcomes.iter().map(|o| o.end()).max()?;
    Some((first, last))
}

fn bins_for(first: SimTime, last: SimTime, bin: SimSpan) -> usize {
    // Enough bins to cover [first, last): ceil(span / bin), at least one.
    let span = last.since(first).as_secs();
    (span.div_ceil(bin.as_secs()).max(1)) as usize
}

/// Utilization per bin: busy processor-seconds in the bin divided by
/// `nodes × bin`. Values are in `[0, 1]`.
pub fn utilization_series(outcomes: &[JobOutcome], nodes: u32, bin: SimSpan) -> TimeSeries {
    assert!(
        nodes > 0 && !bin.is_zero(),
        "need positive nodes and bin width"
    );
    let Some((first, last)) = horizon(outcomes) else {
        return TimeSeries {
            origin: SimTime::ZERO,
            bin,
            values: vec![],
        };
    };
    let n = bins_for(first, last, bin);
    let mut busy = vec![0u128; n];
    for o in outcomes {
        let (s, e) = (o.start, o.end());
        if e <= s {
            continue;
        }
        // Distribute width × overlap into each covered bin.
        let first_bin = (s.since(first).as_secs() / bin.as_secs()) as usize;
        let last_bin = ((e.since(first).as_secs().saturating_sub(1)) / bin.as_secs()) as usize;
        for (b, slot) in busy
            .iter_mut()
            .enumerate()
            .take(last_bin + 1)
            .skip(first_bin)
        {
            let bin_start = first + SimSpan::new(b as u64 * bin.as_secs());
            let bin_end = bin_start + bin;
            let lo = s.max(bin_start);
            let hi = e.min(bin_end);
            *slot += o.job.width as u128 * hi.since(lo).as_secs() as u128;
        }
    }
    let denom = nodes as f64 * bin.as_secs_f64();
    TimeSeries {
        origin: first,
        bin,
        values: busy.iter().map(|&b| b as f64 / denom).collect(),
    }
}

/// Mean number of waiting jobs per bin (sampled as the time-average of the
/// piecewise-constant queue-length function).
pub fn queue_depth_series(outcomes: &[JobOutcome], bin: SimSpan) -> TimeSeries {
    assert!(!bin.is_zero(), "need positive bin width");
    let Some((first, last)) = horizon(outcomes) else {
        return TimeSeries {
            origin: SimTime::ZERO,
            bin,
            values: vec![],
        };
    };
    let n = bins_for(first, last, bin);
    let mut waiting_secs = vec![0u128; n];
    for o in outcomes {
        let (s, e) = (o.job.arrival, o.start);
        if e <= s {
            continue;
        }
        let first_bin = (s.since(first).as_secs() / bin.as_secs()) as usize;
        let last_bin = ((e.since(first).as_secs().saturating_sub(1)) / bin.as_secs()) as usize;
        for (b, slot) in waiting_secs
            .iter_mut()
            .enumerate()
            .take(last_bin + 1)
            .skip(first_bin)
        {
            let bin_start = first + SimSpan::new(b as u64 * bin.as_secs());
            let bin_end = bin_start + bin;
            let lo = s.max(bin_start);
            let hi = e.min(bin_end);
            *slot += hi.since(lo).as_secs() as u128;
        }
    }
    TimeSeries {
        origin: first,
        bin,
        values: waiting_secs
            .iter()
            .map(|&w| w as f64 / bin.as_secs_f64())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::JobId;
    use workload::Job;

    fn outcome(arrival: u64, runtime: u64, width: u32, start: u64) -> JobOutcome {
        JobOutcome::new(
            Job {
                id: JobId(0),
                arrival: SimTime::new(arrival),
                runtime: SimSpan::new(runtime),
                estimate: SimSpan::new(runtime),
                width,
            },
            SimTime::new(start),
        )
    }

    #[test]
    fn full_machine_is_utilization_one() {
        // 8 procs busy for 100 s, bins of 10 s.
        let outcomes = vec![outcome(0, 100, 8, 0)];
        let ts = utilization_series(&outcomes, 8, SimSpan::new(10));
        assert_eq!(ts.len(), 10);
        for &v in ts.values() {
            assert!((v - 1.0).abs() < 1e-12, "bin value {v}");
        }
        assert!((ts.mean() - 1.0).abs() < 1e-12);
        assert_eq!(ts.peak(), 1.0);
    }

    #[test]
    fn partial_bins_account_fractional_overlap() {
        // 4 of 8 procs busy on [5, 15): bins [0,10) and [10,20) each get
        // 4 procs x 5 s = 20 proc-s of 80 -> 0.25.
        let outcomes = vec![outcome(0, 10, 4, 5)];
        let ts = utilization_series(&outcomes, 8, SimSpan::new(10));
        assert!((ts.values()[0] - 0.25).abs() < 1e-12);
        assert!((ts.values()[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn utilization_never_exceeds_one_for_valid_schedules() {
        let outcomes = vec![
            outcome(0, 50, 4, 0),
            outcome(0, 50, 4, 0),
            outcome(0, 100, 8, 50),
        ];
        let ts = utilization_series(&outcomes, 8, SimSpan::new(7));
        for &v in ts.values() {
            assert!(v <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn queue_depth_counts_waiting_jobs() {
        // Job waits on [0, 100); second waits on [50, 100). Bin 100 s:
        // (100 + 50) / 100 = 1.5 average waiting jobs in bin 0.
        let outcomes = vec![outcome(0, 10, 1, 100), outcome(50, 10, 1, 100)];
        let ts = queue_depth_series(&outcomes, SimSpan::new(100));
        assert!((ts.values()[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_wait_jobs_contribute_nothing_to_queue() {
        let outcomes = vec![outcome(0, 10, 1, 0)];
        let ts = queue_depth_series(&outcomes, SimSpan::new(5));
        for &v in ts.values() {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn empty_schedule_gives_empty_series() {
        let ts = utilization_series(&[], 8, SimSpan::new(10));
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), 0.0);
        let ts = queue_depth_series(&[], SimSpan::new(10));
        assert!(ts.is_empty());
    }

    #[test]
    fn origin_is_first_arrival() {
        let outcomes = vec![outcome(500, 10, 1, 505)];
        let ts = utilization_series(&outcomes, 8, SimSpan::new(10));
        assert_eq!(ts.origin(), SimTime::new(500));
        assert_eq!(ts.bin(), SimSpan::new(10));
    }
}
