//! # metrics — measurement library for scheduling simulations
//!
//! * [`outcome`] — per-job results and the paper's job-level metrics
//!   (wait, turnaround, bounded slowdown with the 10 s threshold);
//! * [`aggregate`] — one-pass aggregation into overall, per-category
//!   (SN/SW/LN/LW) and per-estimate-quality summaries;
//! * [`welford`] — streaming mean/variance/min/max;
//! * [`quantile`] — exact quantiles;
//! * [`histogram`] — log-binned histograms;
//! * [`capacity`] — loss-of-capacity breakdown (idle-while-waiting);
//! * [`mod@fairness`] — Gini / max-stretch / overtake-rate fairness measures;
//! * [`timeseries`] — binned utilization and queue-depth series;
//! * [`viz`] — sparkline and ASCII-Gantt renderers;
//! * [`report`] — aligned text tables and CSV for the repro harness.

#![warn(missing_docs)]

pub mod aggregate;
pub mod capacity;
pub mod fairness;
pub mod histogram;
pub mod outcome;
pub mod quantile;
pub mod report;
pub mod timeseries;
pub mod viz;
pub mod welford;

pub use aggregate::{percent_change, MetricSummary, ScheduleStats};
pub use capacity::{capacity_report, CapacityReport};
pub use fairness::{fairness, gini, FairnessReport};
pub use histogram::LogHistogram;
pub use outcome::{JobOutcome, BOUNDED_SLOWDOWN_THRESHOLD_SECS};
pub use quantile::Quantiles;
pub use report::{fnum, fpct, Table};
pub use timeseries::{queue_depth_series, utilization_series, TimeSeries};
pub use welford::Welford;
