//! Streaming summary statistics (Welford's algorithm).
//!
//! Simulations produce hundreds of thousands of per-job metrics; Welford's
//! online update gives numerically stable mean/variance in one pass with
//! O(1) memory, plus min/max tracking for worst-case reporting (the paper's
//! Tables 4 and 7 report worst-case turnaround times).

use serde::{Deserialize, Serialize};

/// Online mean / variance / min / max accumulator.
///
/// ```
/// use metrics::Welford;
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0] { w.push(x); }
/// assert_eq!(w.mean(), 2.0);
/// assert_eq!(w.variance(), 1.0);
/// assert_eq!(w.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation. Non-finite values are rejected with a panic —
    /// a NaN silently poisoning a mean is the worst failure mode a metrics
    /// library can have.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite observation {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (Chan's parallel update);
    /// used to combine per-thread sweep results.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator; 0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_sample() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1: 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn empty_accumulator_defaults() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn single_observation() {
        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), Some(3.5));
        assert_eq!(w.max(), Some(3.5));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(2.0);
        let snapshot = w;
        w.merge(&Welford::new());
        assert_eq!(w, snapshot);
        let mut e = Welford::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        let mut w = Welford::new();
        for x in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            w.push(x);
        }
        assert!((w.mean() - (1e9 + 10.0)).abs() < 1e-3);
        assert!(
            (w.variance() - 30.0).abs() < 1e-3,
            "variance {}",
            w.variance()
        );
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        Welford::new().push(f64::NAN);
    }
}
