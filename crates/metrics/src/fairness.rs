//! Fairness metrics for schedules.
//!
//! The paper's worst-case turnaround rows (Tables 4, 7) are a fairness
//! signal: EASY's averages improve while individual jobs starve. This
//! module quantifies that trade-off properly — the same research group's
//! follow-up line of work ("Unfairness in parallel job scheduling") made
//! these first-class metrics:
//!
//! * **Gini coefficient** of per-job bounded slowdowns — 0 is perfectly
//!   even service, 1 is maximally concentrated pain;
//! * **max-stretch** — the worst bounded slowdown (the classic theory
//!   metric);
//! * **overtake count** — how many job pairs ran in the opposite order to
//!   their arrival (a direct measure of how much a policy deviates from
//!   FCFS service order).

use crate::outcome::JobOutcome;
use serde::{Deserialize, Serialize};

/// Gini coefficient of a set of non-negative values.
///
/// Uses the sorted-rank formula `G = (2·Σᵢ i·xᵢ)/(n·Σ xᵢ) − (n+1)/n` with
/// 1-based ranks over ascending values. Returns 0 for empty input or an
/// all-zero sum.
pub fn gini(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|v| v.is_finite() && *v >= 0.0),
        "gini requires finite non-negative values"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// A schedule's fairness summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Gini coefficient of bounded slowdowns.
    pub slowdown_gini: f64,
    /// Worst bounded slowdown (max-stretch).
    pub max_stretch: f64,
    /// Fraction of job pairs served out of arrival order
    /// (0 = pure FCFS service, 0.5 ≈ arrival order ignored).
    pub overtake_rate: f64,
}

/// Compute the fairness summary of a schedule's outcomes.
///
/// The overtake rate is exact (O(n log n) via merge-sort inversion
/// counting over start times in arrival order).
pub fn fairness(outcomes: &[JobOutcome]) -> FairnessReport {
    let slowdowns: Vec<f64> = outcomes.iter().map(JobOutcome::bounded_slowdown).collect();
    let max_stretch = slowdowns.iter().cloned().fold(0.0, f64::max);

    // Outcomes are in job-id order; sort keys by arrival (stable: ties keep
    // id order), then count inversions of start times.
    let mut by_arrival: Vec<(u64, u64)> = outcomes
        .iter()
        .map(|o| (o.job.arrival.as_secs(), o.start.as_secs()))
        .collect();
    by_arrival.sort_by_key(|&(arrival, _)| arrival);
    let starts: Vec<u64> = by_arrival.into_iter().map(|(_, s)| s).collect();
    let inversions = count_inversions(&starts);
    let n = outcomes.len() as u64;
    let pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
    let overtake_rate = if pairs == 0 {
        0.0
    } else {
        inversions as f64 / pairs as f64
    };

    FairnessReport {
        slowdown_gini: gini(&slowdowns),
        max_stretch,
        overtake_rate,
    }
}

/// Count pairs `(i, j)` with `i < j` but `v[i] > v[j]` (strict inversions).
fn count_inversions(v: &[u64]) -> u64 {
    fn sort_count(v: &mut Vec<u64>) -> u64 {
        let n = v.len();
        if n <= 1 {
            return 0;
        }
        let mut right = v.split_off(n / 2);
        let mut inv = sort_count(v) + sort_count(&mut right);
        // Merge, counting cross inversions (left element strictly greater).
        let left = std::mem::take(v);
        let (mut i, mut j) = (0, 0);
        let mut merged = Vec::with_capacity(left.len() + right.len());
        while i < left.len() && j < right.len() {
            if left[i] <= right[j] {
                merged.push(left[i]);
                i += 1;
            } else {
                inv += (left.len() - i) as u64;
                merged.push(right[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&left[i..]);
        merged.extend_from_slice(&right[j..]);
        *v = merged;
        inv
    }
    let mut copy = v.to_vec();
    sort_count(&mut copy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{JobId, SimSpan, SimTime};
    use workload::Job;

    fn outcome(arrival: u64, runtime: u64, start: u64) -> JobOutcome {
        JobOutcome::new(
            Job {
                id: JobId(0),
                arrival: SimTime::new(arrival),
                runtime: SimSpan::new(runtime),
                estimate: SimSpan::new(runtime),
                width: 1,
            },
            SimTime::new(start),
        )
    }

    #[test]
    fn gini_of_equal_values_is_zero() {
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn gini_of_concentrated_values_approaches_one() {
        let mut v = vec![0.0; 99];
        v.push(100.0);
        let g = gini(&v);
        assert!(g > 0.95, "gini {g}");
    }

    #[test]
    fn gini_known_value() {
        // For [1, 3]: G = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
        assert!((gini(&[1.0, 3.0]) - 0.25).abs() < 1e-12);
        // Order independence.
        assert!((gini(&[3.0, 1.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn gini_rejects_negative() {
        gini(&[1.0, -2.0]);
    }

    #[test]
    fn inversion_counting() {
        assert_eq!(count_inversions(&[1, 2, 3, 4]), 0);
        assert_eq!(count_inversions(&[4, 3, 2, 1]), 6);
        assert_eq!(count_inversions(&[2, 1, 3]), 1);
        assert_eq!(count_inversions(&[]), 0);
        assert_eq!(count_inversions(&[7]), 0);
        // Equal elements are not inversions.
        assert_eq!(count_inversions(&[5, 5, 5]), 0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let outcomes = vec![outcome(0, 10, 0), outcome(5, 10, 40), outcome(8, 10, 20)];
        let r = fairness(&outcomes);
        let text = serde_json::to_string(&r).unwrap();
        let back: FairnessReport = serde_json::from_str(&text).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn fcfs_service_has_zero_overtakes() {
        let outcomes = vec![outcome(0, 10, 0), outcome(5, 10, 10), outcome(8, 10, 20)];
        let r = fairness(&outcomes);
        assert_eq!(r.overtake_rate, 0.0);
    }

    #[test]
    fn reversed_service_has_full_overtake_rate() {
        let outcomes = vec![outcome(0, 10, 40), outcome(5, 10, 20), outcome(8, 10, 8)];
        let r = fairness(&outcomes);
        assert!((r.overtake_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_stretch_is_worst_slowdown() {
        let outcomes = vec![outcome(0, 100, 0), outcome(0, 100, 300)];
        let r = fairness(&outcomes);
        assert!((r.max_stretch - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule() {
        let r = fairness(&[]);
        assert_eq!(r.overtake_rate, 0.0);
        assert_eq!(r.max_stretch, 0.0);
        assert_eq!(r.slowdown_gini, 0.0);
    }
}
