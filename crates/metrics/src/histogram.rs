//! Logarithmically binned histograms.
//!
//! Wait times and slowdowns span five orders of magnitude; log-spaced bins
//! give useful resolution everywhere. Used by the distribution-shape
//! reports that complement the paper's averages.

use serde::{Deserialize, Serialize};

/// A histogram over `[min, max)` with logarithmically spaced bins, plus
/// underflow/overflow counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    min: f64,
    max: f64,
    log_min: f64,
    log_width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl LogHistogram {
    /// Create with `bins` log-spaced buckets over `[min, max)`.
    /// Requires `0 < min < max` and at least one bin.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(
            min > 0.0 && min.is_finite(),
            "log histogram needs min > 0, got {min}"
        );
        assert!(
            max > min && max.is_finite(),
            "log histogram needs max > min"
        );
        assert!(bins >= 1, "log histogram needs at least one bin");
        let log_min = min.ln();
        let log_width = (max.ln() - log_min) / bins as f64;
        LogHistogram {
            min,
            max,
            log_min,
            log_width,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite observation {x}");
        self.count += 1;
        if x < self.min {
            self.underflow += 1;
        } else if x >= self.max {
            self.overflow += 1;
        } else {
            let idx = ((x.ln() - self.log_min) / self.log_width) as usize;
            let idx = idx.min(self.bins.len() - 1); // float-edge safety
            self.bins[idx] += 1;
        }
    }

    /// Total observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below `min`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `max`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The `[lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len());
        let lo = (self.log_min + self.log_width * i as f64).exp();
        let hi = (self.log_min + self.log_width * (i + 1) as f64).exp();
        (lo, hi)
    }

    /// Fraction of in-range mass at or below bin `i` (empirical CDF at the
    /// bin's upper edge, counting underflow as below).
    pub fn cdf_at_bin(&self, i: usize) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let upto: u64 = self.underflow + self.bins[..=i].iter().sum::<u64>();
        upto as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_range_logarithmically() {
        let h = LogHistogram::new(1.0, 1000.0, 3);
        let (lo, hi) = h.bin_edges(0);
        assert!((lo - 1.0).abs() < 1e-9);
        assert!((hi - 10.0).abs() < 1e-6);
        let (lo, hi) = h.bin_edges(2);
        assert!((lo - 100.0).abs() < 1e-4);
        assert!((hi - 1000.0).abs() < 1e-3);
    }

    #[test]
    fn observations_land_in_correct_bins() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        for &x in &[2.0, 5.0, 20.0, 500.0, 999.0] {
            h.push(x);
        }
        assert_eq!(h.bins(), &[2, 1, 2]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = LogHistogram::new(1.0, 100.0, 2);
        h.push(0.5);
        h.push(100.0);
        h.push(1e9);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bins(), &[0, 0]);
    }

    #[test]
    fn boundary_values() {
        let mut h = LogHistogram::new(1.0, 100.0, 2);
        h.push(1.0); // exactly min -> bin 0
        h.push(10.0 - 1e-12); // just under the edge -> bin 0
        h.push(10.0 + 1e-9); // just over -> bin 1
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[1], 1);
    }

    #[test]
    fn cdf_accumulates() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        for &x in &[2.0, 20.0, 200.0, 0.5] {
            h.push(x);
        }
        assert!((h.cdf_at_bin(0) - 0.5).abs() < 1e-12); // underflow + bin0
        assert!((h.cdf_at_bin(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "min > 0")]
    fn rejects_non_positive_min() {
        LogHistogram::new(0.0, 10.0, 4);
    }
}
