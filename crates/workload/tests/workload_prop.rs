//! Property-based tests of the workload substrate: SWF round-trips,
//! estimate-model invariants, trace-transform laws, and distribution
//! sanity under arbitrary parameters.

use proptest::prelude::*;
use simcore::{JobId, SimRng, SimSpan, SimTime};
use workload::dist::{Exponential, LogNormal, Sample, Uniform, Weibull};
use workload::load::{scale_interarrival, scale_to_load};
use workload::{swf, CategoryCriteria, EstimateModel, Job, Trace, UserModelParams};

fn arb_jobs() -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec(
        (0u64..1_000_000, 1u64..200_000, 0u64..400_000, 1u32..=128),
        1..50,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(arrival, runtime, slack, width)| Job {
                id: JobId(0),
                arrival: SimTime::new(arrival),
                runtime: SimSpan::new(runtime),
                estimate: SimSpan::new(runtime + slack),
                width,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SWF write → parse is the identity on valid traces.
    #[test]
    fn swf_round_trip(jobs in arb_jobs()) {
        let trace = Trace::new("rt", 128, jobs).expect("valid");
        let text = swf::write_trace(&trace);
        let parsed = swf::parse_trace(&text, "rt", None).expect("parses");
        prop_assert_eq!(parsed.trace.jobs(), trace.jobs());
        prop_assert_eq!(parsed.trace.nodes(), trace.nodes());
        prop_assert_eq!(parsed.dropped.total(), 0);
    }

    /// Every estimate model preserves `estimate >= runtime` and never
    /// touches runtime, width, or arrival.
    #[test]
    fn estimate_models_preserve_invariants(
        jobs in arb_jobs(),
        seed in any::<u64>(),
        factor in 1.0f64..16.0,
        exact_frac in 0.0f64..1.0,
        max_factor in 1.0f64..64.0,
    ) {
        let trace = Trace::new("est", 128, jobs).expect("valid");
        let models = [
            EstimateModel::Exact,
            EstimateModel::systematic(factor),
            EstimateModel::User(UserModelParams {
                exact_frac,
                max_factor,
                round_values: true,
                max_estimate: Some(SimSpan::from_hours(18)),
            }),
        ];
        for model in models {
            let out = model.apply(&trace, seed);
            prop_assert_eq!(out.len(), trace.len());
            for (a, b) in trace.jobs().iter().zip(out.jobs()) {
                prop_assert!(b.estimate >= b.runtime);
                prop_assert_eq!(a.runtime, b.runtime);
                prop_assert_eq!(a.width, b.width);
                prop_assert_eq!(a.arrival, b.arrival);
            }
        }
    }

    /// Inter-arrival scaling: factor 1 is identity; composing f then 1/f
    /// returns arrivals to within rounding; load targeting hits its target.
    #[test]
    fn load_scaling_laws(jobs in arb_jobs(), factor in 0.05f64..20.0) {
        let trace = Trace::new("load", 128, jobs).expect("valid");
        let same = scale_interarrival(&trace, 1.0);
        prop_assert_eq!(same.jobs(), trace.jobs());

        let scaled = scale_interarrival(&trace, factor);
        let back = scale_interarrival(&scaled, 1.0 / factor);
        for (a, b) in trace.jobs().iter().zip(back.jobs()) {
            let da = a.arrival.as_secs() as i128;
            let db = b.arrival.as_secs() as i128;
            // One rounding step each way.
            prop_assert!((da - db).abs() <= (factor.max(1.0 / factor)).ceil() as i128 + 1);
        }

        if trace.offered_load().is_finite() && trace.offered_load() > 0.0 {
            let hot = scale_to_load(&trace, 0.9);
            let rho = hot.offered_load();
            // Integral arrival rounding perturbs the span slightly.
            prop_assert!((rho - 0.9).abs() < 0.05, "rho {rho}");
        }
    }

    /// Categorization is total and consistent with its defining predicate.
    #[test]
    fn categorization_matches_definition(jobs in arb_jobs()) {
        let c = CategoryCriteria::default();
        let trace = Trace::new("cat", 128, jobs).expect("valid");
        let dist = c.distribution(&trace);
        prop_assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for j in trace.jobs() {
            let cat = c.categorize(j);
            prop_assert_eq!(cat.is_short(), j.runtime <= c.short_max);
            prop_assert_eq!(cat.is_narrow(), j.width <= c.narrow_max);
        }
    }

    /// All continuous samplers produce positive, finite values for any
    /// valid parameters.
    #[test]
    fn samplers_are_finite_and_positive(
        seed in any::<u64>(),
        mean in 0.001f64..1e6,
        shape in 0.05f64..20.0,
        sigma in 0.0f64..4.0,
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let dists: Vec<Box<dyn Sample>> = vec![
            Box::new(Exponential::with_mean(mean)),
            Box::new(Weibull::new(shape, mean)),
            Box::new(LogNormal::new(mean.ln(), sigma)),
            Box::new(Uniform::new(0.0, mean)),
        ];
        for d in &dists {
            for _ in 0..50 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite());
                prop_assert!(x >= 0.0);
            }
        }
    }

    /// Trace construction sorts by arrival and assigns dense ids, for any
    /// input order.
    #[test]
    fn trace_normalization(jobs in arb_jobs()) {
        let trace = Trace::new("norm", 128, jobs).expect("valid");
        for (i, w) in trace.jobs().windows(2).enumerate() {
            prop_assert!(w[0].arrival <= w[1].arrival);
            prop_assert_eq!(w[0].id, JobId(i as u32));
        }
        if let Some(last) = trace.jobs().last() {
            prop_assert_eq!(last.id, JobId(trace.len() as u32 - 1));
        }
    }
}
