//! The job model.
//!
//! A parallel job, as the paper (and every space-sharing scheduler since
//! EASY) sees it: it arrives at some instant, requests a rectangle of
//! `width` processors × `estimate` seconds, and actually runs for
//! `runtime ≤ estimate` seconds. Schedulers may only consult `estimate`;
//! the simulation driver alone knows `runtime`.

use serde::{Deserialize, Serialize};
use simcore::{JobId, SimSpan, SimTime};

/// One parallel job of a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Job {
    /// Dense identifier; equals the job's index in its trace.
    pub id: JobId,
    /// Submission instant.
    pub arrival: SimTime,
    /// Actual runtime. Hidden from schedulers.
    pub runtime: SimSpan,
    /// User-estimated runtime (wall-clock limit). What schedulers see.
    pub estimate: SimSpan,
    /// Number of processors requested (held for the whole runtime).
    pub width: u32,
}

impl Job {
    /// Estimated completion if started at `start`.
    pub fn estimated_end(&self, start: SimTime) -> SimTime {
        start + self.estimate
    }

    /// Actual completion if started at `start`.
    pub fn actual_end(&self, start: SimTime) -> SimTime {
        start + self.runtime
    }

    /// Processor-seconds of real work (`width × runtime`).
    pub fn area(&self) -> u128 {
        self.width as u128 * self.runtime.as_secs() as u128
    }

    /// Overestimation ratio `estimate / max(runtime, 1)`.
    pub fn overestimation(&self) -> f64 {
        self.estimate.as_secs_f64() / self.runtime.as_secs().max(1) as f64
    }

    /// Check the invariants every schedulable job must satisfy. Returns a
    /// human-readable description of the first violation, if any.
    pub fn validate(&self) -> Result<(), JobDefect> {
        if self.width == 0 {
            return Err(JobDefect::ZeroWidth);
        }
        if self.runtime.is_zero() {
            return Err(JobDefect::ZeroRuntime);
        }
        if self.estimate < self.runtime {
            return Err(JobDefect::EstimateBelowRuntime {
                estimate: self.estimate,
                runtime: self.runtime,
            });
        }
        Ok(())
    }
}

/// Why a job record is unusable by the simulator.
///
/// Real archive logs contain cancelled jobs (zero runtime), zero-width
/// records, and jobs killed past their wall-clock limit (runtime > estimate).
/// The paper's methodology drops/repairs these before simulation; `Trace`
/// construction surfaces them explicitly instead of silently mangling data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobDefect {
    /// The job requests zero processors.
    ZeroWidth,
    /// The job has zero runtime (e.g. cancelled before starting).
    ZeroRuntime,
    /// The recorded runtime exceeds the user estimate.
    EstimateBelowRuntime {
        /// The deficient estimate.
        estimate: SimSpan,
        /// The recorded runtime.
        runtime: SimSpan,
    },
}

impl std::fmt::Display for JobDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobDefect::ZeroWidth => write!(f, "zero processors requested"),
            JobDefect::ZeroRuntime => write!(f, "zero runtime"),
            JobDefect::EstimateBelowRuntime { estimate, runtime } => {
                write!(f, "estimate {estimate} below runtime {runtime}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(runtime: u64, estimate: u64, width: u32) -> Job {
        Job {
            id: JobId(0),
            arrival: SimTime::new(100),
            runtime: SimSpan::new(runtime),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    #[test]
    fn ends_are_offset_by_runtime_and_estimate() {
        let j = job(50, 80, 4);
        assert_eq!(j.actual_end(SimTime::new(10)), SimTime::new(60));
        assert_eq!(j.estimated_end(SimTime::new(10)), SimTime::new(90));
    }

    #[test]
    fn area_is_width_times_runtime() {
        assert_eq!(job(100, 100, 7).area(), 700);
    }

    #[test]
    fn overestimation_ratio() {
        assert!((job(50, 100, 1).overestimation() - 2.0).abs() < 1e-12);
        assert!((job(100, 100, 1).overestimation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_good_job() {
        assert_eq!(job(10, 10, 1).validate(), Ok(()));
        assert_eq!(job(10, 40, 128).validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_defects() {
        assert_eq!(job(10, 10, 0).validate(), Err(JobDefect::ZeroWidth));
        assert_eq!(job(0, 10, 1).validate(), Err(JobDefect::ZeroRuntime));
        assert!(matches!(
            job(20, 10, 1).validate(),
            Err(JobDefect::EstimateBelowRuntime { .. })
        ));
    }

    #[test]
    fn defect_display() {
        assert!(JobDefect::ZeroWidth.to_string().contains("zero processors"));
        assert!(job(20, 10, 1)
            .validate()
            .unwrap_err()
            .to_string()
            .contains("below runtime"));
    }
}
