//! # workload — parallel-job workload modeling substrate
//!
//! Everything about *what arrives at the scheduler*:
//!
//! * [`job`]/[`trace`] — the validated job and trace model;
//! * [`swf`] — Standard Workload Format parsing/writing, so real Parallel
//!   Workloads Archive logs drop straight into the simulator;
//! * [`dist`] — hand-built random-variate samplers (uniform, exponential,
//!   hyper-exponential, log-normal, Weibull, gamma, Pareto, Zipf,
//!   categorical/alias, empirical, mixtures);
//! * [`arrival`] — Poisson / diurnal / renewal arrival processes;
//! * [`models`] — calibrated synthetic CTC and SDSC workload generators;
//! * [`estimate`] — user runtime-estimate models (exact, systematic
//!   overestimation, realistic user noise);
//! * [`category`] — the paper's Short/Long × Narrow/Wide job categories and
//!   well/poorly-estimated classes;
//! * [`load`] — offered-load computation and inter-arrival rescaling;
//! * [`stats`] — trace characterization reports (marginals, correlations,
//!   power-of-two shares);
//! * [`flurry`] — injection of user flurries (burst robustness testing);
//! * [`mod@shake`] — input shaking (micro-perturbation robustness testing).

#![warn(missing_docs)]

pub mod arrival;
pub mod category;
pub mod dist;
pub mod estimate;
pub mod flurry;
pub mod job;
pub mod load;
pub mod models;
pub mod shake;
pub mod stats;
pub mod swf;
pub mod trace;

pub use category::{Category, CategoryCriteria, EstimateQuality};
pub use estimate::{EstimateModel, UserModelParams};
pub use flurry::{inject_flurry, FlurrySpec};
pub use job::{Job, JobDefect};
pub use models::{LublinModel, ModelSpec, WorkloadModel};
pub use shake::shake;
pub use stats::{arrival_heatmap, pearson, MarginalSummary, TraceStats};
pub use trace::{Trace, TraceError};
