//! Workload traces: ordered collections of jobs bound to a machine size.

use crate::job::{Job, JobDefect};
use serde::{Deserialize, Serialize};
use simcore::{JobId, SimSpan, SimTime};

/// An immutable, validated workload trace.
///
/// Invariants enforced at construction:
/// * jobs are sorted by `(arrival, id)`;
/// * job ids are dense (`jobs[i].id == JobId(i)`);
/// * every job passes [`Job::validate`];
/// * every width fits the machine (`width <= nodes`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    nodes: u32,
    jobs: Vec<Job>,
}

/// Error produced when assembling a trace from raw job records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A job record violates a per-job invariant.
    BadJob {
        /// Index of the offending record.
        index: usize,
        /// What is wrong with it.
        defect: JobDefect,
    },
    /// A job requests more processors than the machine has.
    TooWide {
        /// Index of the offending record.
        index: usize,
        /// The requested width.
        width: u32,
        /// Machine size.
        nodes: u32,
    },
    /// The machine size is zero.
    NoNodes,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadJob { index, defect } => write!(f, "job at index {index}: {defect}"),
            TraceError::TooWide {
                index,
                width,
                nodes,
            } => {
                write!(f, "job at index {index} requests {width} > {nodes} nodes")
            }
            TraceError::NoNodes => write!(f, "machine has zero nodes"),
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Build a trace from raw records, sorting by arrival and reassigning
    /// dense ids. Rejects any defective record.
    pub fn new(
        name: impl Into<String>,
        nodes: u32,
        mut jobs: Vec<Job>,
    ) -> Result<Self, TraceError> {
        if nodes == 0 {
            return Err(TraceError::NoNodes);
        }
        for (index, job) in jobs.iter().enumerate() {
            job.validate()
                .map_err(|defect| TraceError::BadJob { index, defect })?;
            if job.width > nodes {
                return Err(TraceError::TooWide {
                    index,
                    width: job.width,
                    nodes,
                });
            }
        }
        // Stable sort keeps submission order among simultaneous arrivals.
        jobs.sort_by_key(|j| j.arrival);
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = JobId(i as u32);
        }
        Ok(Trace {
            name: name.into(),
            nodes,
            jobs,
        })
    }

    /// Build a trace, silently dropping defective records (the standard
    /// cleaning step applied to real archive logs). Returns the trace and
    /// the number of records dropped.
    pub fn new_lossy(
        name: impl Into<String>,
        nodes: u32,
        jobs: Vec<Job>,
    ) -> Result<(Self, usize), TraceError> {
        if nodes == 0 {
            return Err(TraceError::NoNodes);
        }
        let before = jobs.len();
        let kept: Vec<Job> = jobs
            .into_iter()
            .filter(|j| j.validate().is_ok() && j.width <= nodes)
            .collect();
        let dropped = before - kept.len();
        Ok((Trace::new(name, nodes, kept)?, dropped))
    }

    /// Trace name (e.g. `"CTC-syn"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Machine size the trace targets.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// The jobs, sorted by arrival.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the trace holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Look up a job by id.
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.0 as usize]
    }

    /// First arrival instant (zero for an empty trace).
    pub fn first_arrival(&self) -> SimTime {
        self.jobs.first().map_or(SimTime::ZERO, |j| j.arrival)
    }

    /// Last arrival instant (zero for an empty trace).
    pub fn last_arrival(&self) -> SimTime {
        self.jobs.last().map_or(SimTime::ZERO, |j| j.arrival)
    }

    /// Arrival span: last arrival − first arrival.
    pub fn arrival_span(&self) -> SimSpan {
        self.last_arrival().since(self.first_arrival())
    }

    /// Total real work in processor-seconds (Σ width·runtime).
    pub fn total_area(&self) -> u128 {
        self.jobs.iter().map(Job::area).sum()
    }

    /// Offered load ρ = total work / (nodes × arrival span).
    ///
    /// The standard open-system load measure: the machine can keep up in the
    /// long run iff ρ < 1. Returns infinity for a zero arrival span with
    /// non-zero work.
    pub fn offered_load(&self) -> f64 {
        let span = self.arrival_span().as_secs();
        if span == 0 {
            return if self.total_area() == 0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        self.total_area() as f64 / (self.nodes as f64 * span as f64)
    }

    /// Replace every job's estimate using `f(job) -> new_estimate`.
    ///
    /// Panics (in the returned `Trace::new` error) if `f` produces an
    /// estimate below the runtime; estimate models must respect
    /// `estimate ≥ runtime`.
    pub fn map_estimates(&self, mut f: impl FnMut(&Job) -> SimSpan) -> Result<Trace, TraceError> {
        let jobs = self
            .jobs
            .iter()
            .map(|j| Job {
                estimate: f(j),
                ..*j
            })
            .collect();
        Trace::new(self.name.clone(), self.nodes, jobs)
    }

    /// Return a copy containing only the first `n` jobs (by arrival).
    pub fn truncated(&self, n: usize) -> Trace {
        Trace {
            name: self.name.clone(),
            nodes: self.nodes,
            jobs: self.jobs.iter().take(n).copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(arrival: u64, runtime: u64, estimate: u64, width: u32) -> Job {
        Job {
            id: JobId(999), // deliberately wrong; Trace::new reassigns
            arrival: SimTime::new(arrival),
            runtime: SimSpan::new(runtime),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    #[test]
    fn construction_sorts_and_reassigns_ids() {
        let t = Trace::new("t", 8, vec![raw(20, 1, 1, 1), raw(10, 1, 1, 1)]).unwrap();
        assert_eq!(t.jobs()[0].arrival, SimTime::new(10));
        assert_eq!(t.jobs()[0].id, JobId(0));
        assert_eq!(t.jobs()[1].id, JobId(1));
        assert_eq!(t.job(JobId(1)).arrival, SimTime::new(20));
    }

    #[test]
    fn simultaneous_arrivals_keep_submission_order() {
        let mut a = raw(10, 5, 5, 1);
        a.width = 1;
        let mut b = raw(10, 7, 7, 2);
        b.width = 2;
        let t = Trace::new("t", 8, vec![a, b]).unwrap();
        assert_eq!(t.jobs()[0].width, 1);
        assert_eq!(t.jobs()[1].width, 2);
    }

    #[test]
    fn rejects_defective_jobs() {
        assert!(matches!(
            Trace::new("t", 8, vec![raw(0, 0, 1, 1)]),
            Err(TraceError::BadJob { index: 0, .. })
        ));
        assert!(matches!(
            Trace::new("t", 8, vec![raw(0, 1, 1, 9)]),
            Err(TraceError::TooWide {
                width: 9,
                nodes: 8,
                ..
            })
        ));
        assert!(matches!(
            Trace::new("t", 0, vec![]),
            Err(TraceError::NoNodes)
        ));
    }

    #[test]
    fn lossy_construction_drops_and_counts() {
        let (t, dropped) = Trace::new_lossy(
            "t",
            8,
            vec![
                raw(0, 1, 1, 1),
                raw(1, 0, 1, 1),
                raw(2, 1, 1, 20),
                raw(3, 2, 2, 2),
            ],
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(dropped, 2);
    }

    #[test]
    fn load_and_area() {
        // Two jobs: 4x100 and 4x100 = 800 proc-s, arrivals 0 and 100,
        // 8 nodes -> rho = 800 / (8*100) = 1.0.
        let t = Trace::new("t", 8, vec![raw(0, 100, 100, 4), raw(100, 100, 100, 4)]).unwrap();
        assert_eq!(t.total_area(), 800);
        assert!((t.offered_load() - 1.0).abs() < 1e-12);
        assert_eq!(t.arrival_span(), SimSpan::new(100));
    }

    #[test]
    fn offered_load_degenerate_cases() {
        let t = Trace::new("t", 8, vec![raw(5, 10, 10, 1)]).unwrap();
        assert!(t.offered_load().is_infinite());
        let t = Trace::new("t", 8, vec![]).unwrap();
        assert_eq!(t.offered_load(), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn map_estimates_scales() {
        let t = Trace::new("t", 8, vec![raw(0, 50, 50, 1)]).unwrap();
        let doubled = t.map_estimates(|j| j.estimate.scale(2.0)).unwrap();
        assert_eq!(doubled.jobs()[0].estimate, SimSpan::new(100));
        assert_eq!(doubled.jobs()[0].runtime, SimSpan::new(50));
    }

    #[test]
    fn map_estimates_rejects_below_runtime() {
        let t = Trace::new("t", 8, vec![raw(0, 50, 50, 1)]).unwrap();
        assert!(t.map_estimates(|_| SimSpan::new(10)).is_err());
    }

    #[test]
    fn truncated_keeps_prefix() {
        let t = Trace::new(
            "t",
            8,
            vec![raw(0, 1, 1, 1), raw(1, 1, 1, 1), raw(2, 1, 1, 1)],
        )
        .unwrap();
        let p = t.truncated(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.last_arrival(), SimTime::new(1));
    }
}
