//! Offered-load manipulation.
//!
//! The paper simulates a "high load" condition by shrinking the
//! inter-arrival times of jobs (Section 3). Shrinking arrivals by a factor
//! `f < 1` multiplies the offered load ρ = work / (nodes × span) by `1/f`
//! while leaving every job's shape untouched.

use crate::job::Job;
use crate::trace::Trace;
use simcore::SimSpan;

/// Scale all inter-arrival gaps by `factor` (`< 1` compresses ⇒ higher
/// load, `> 1` dilates ⇒ lower load). The first arrival stays fixed; each
/// subsequent arrival is re-placed at `first + (arrival − first) × factor`.
pub fn scale_interarrival(trace: &Trace, factor: f64) -> Trace {
    assert!(
        factor.is_finite() && factor > 0.0,
        "inter-arrival scale factor must be positive, got {factor}"
    );
    let first = trace.first_arrival();
    let jobs: Vec<Job> = trace
        .jobs()
        .iter()
        .map(|j| Job {
            arrival: first + j.arrival.since(first).scale(factor),
            ..*j
        })
        .collect();
    Trace::new(trace.name().to_string(), trace.nodes(), jobs)
        .expect("arrival scaling preserves validity")
}

/// Rescale arrivals so the trace's offered load becomes `target_rho`.
///
/// Returns the rescaled trace. Panics on a degenerate trace (fewer than two
/// distinct arrival instants, or zero work) where load is undefined.
pub fn scale_to_load(trace: &Trace, target_rho: f64) -> Trace {
    assert!(
        target_rho.is_finite() && target_rho > 0.0,
        "target load must be positive, got {target_rho}"
    );
    let current = trace.offered_load();
    assert!(
        current.is_finite() && current > 0.0,
        "trace has undefined offered load ({current}); cannot rescale"
    );
    scale_interarrival(trace, current / target_rho)
}

/// The mean inter-arrival gap of a trace (zero if fewer than two jobs).
pub fn mean_interarrival(trace: &Trace) -> SimSpan {
    if trace.len() < 2 {
        return SimSpan::ZERO;
    }
    SimSpan::new(trace.arrival_span().as_secs() / (trace.len() as u64 - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{JobId, SimTime};

    fn trace_with_arrivals(arrivals: &[u64]) -> Trace {
        let jobs = arrivals
            .iter()
            .map(|&a| Job {
                id: JobId(0),
                arrival: SimTime::new(a),
                runtime: SimSpan::new(100),
                estimate: SimSpan::new(100),
                width: 4,
            })
            .collect();
        Trace::new("t", 8, jobs).unwrap()
    }

    #[test]
    fn compression_halves_gaps() {
        let t = trace_with_arrivals(&[1000, 1200, 1400]);
        let c = scale_interarrival(&t, 0.5);
        let arr: Vec<u64> = c.jobs().iter().map(|j| j.arrival.as_secs()).collect();
        assert_eq!(arr, vec![1000, 1100, 1200]);
    }

    #[test]
    fn dilation_doubles_gaps() {
        let t = trace_with_arrivals(&[0, 10, 30]);
        let d = scale_interarrival(&t, 2.0);
        let arr: Vec<u64> = d.jobs().iter().map(|j| j.arrival.as_secs()).collect();
        assert_eq!(arr, vec![0, 20, 60]);
    }

    #[test]
    fn factor_one_is_identity() {
        let t = trace_with_arrivals(&[5, 17, 90]);
        assert_eq!(scale_interarrival(&t, 1.0).jobs(), t.jobs());
    }

    #[test]
    fn shapes_are_preserved() {
        let t = trace_with_arrivals(&[0, 100]);
        let c = scale_interarrival(&t, 0.25);
        for (a, b) in t.jobs().iter().zip(c.jobs()) {
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.estimate, b.estimate);
            assert_eq!(a.width, b.width);
        }
    }

    #[test]
    fn scale_to_load_hits_target() {
        // Work: 2 jobs x 4 procs x 100 s = 800; span 1000 s; 8 nodes:
        // rho = 800/8000 = 0.1. Target 0.8 compresses 8x.
        let t = trace_with_arrivals(&[0, 1000]);
        assert!((t.offered_load() - 0.1).abs() < 1e-12);
        let hot = scale_to_load(&t, 0.8);
        assert!(
            (hot.offered_load() - 0.8).abs() < 0.01,
            "rho {}",
            hot.offered_load()
        );
    }

    #[test]
    fn scale_to_load_can_reduce_load_too() {
        let t = trace_with_arrivals(&[0, 100]);
        let rho = t.offered_load();
        let cool = scale_to_load(&t, rho / 2.0);
        assert!((cool.offered_load() - rho / 2.0).abs() / rho < 0.01);
    }

    #[test]
    fn mean_interarrival_basics() {
        let t = trace_with_arrivals(&[0, 100, 300]);
        assert_eq!(mean_interarrival(&t), SimSpan::new(150));
        let t1 = trace_with_arrivals(&[50]);
        assert_eq!(mean_interarrival(&t1), SimSpan::ZERO);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_factor() {
        let t = trace_with_arrivals(&[0, 10]);
        scale_interarrival(&t, 0.0);
    }

    #[test]
    #[should_panic(expected = "undefined offered load")]
    fn rejects_degenerate_trace_for_load_targeting() {
        let t = trace_with_arrivals(&[5]);
        scale_to_load(&t, 0.9);
    }
}
