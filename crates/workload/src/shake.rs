//! Input shaking — robustness testing by micro-perturbation.
//!
//! Tsafrir, Ouaknine & Feitelson ("Reducing performance evaluation
//! sensitivity and variability by input shaking") observed that simulation
//! conclusions sometimes hinge on razor-thin timing coincidences in one
//! trace, and proposed *shaking*: rerun the experiment on many copies of
//! the input with tiny random perturbations of the arrival times, and
//! report the distribution instead of the single number. A conclusion
//! that survives shaking is robust; one that flips is an artifact.
//!
//! [`shake`] produces one perturbed copy; experiment harnesses map over
//! seeds to build the shaken ensemble (see the `shaking` repro command).

use crate::job::Job;
use crate::trace::Trace;
use simcore::{SimRng, SimSpan};

/// Perturb each job's arrival by an independent uniform offset in
/// `[-magnitude, +magnitude]`, clamped at zero, deterministically from
/// `seed`. Runtimes, estimates and widths are untouched; the trace is
/// re-sorted (so ids may permute — shapes, not identities, are preserved).
pub fn shake(trace: &Trace, magnitude: SimSpan, seed: u64) -> Trace {
    assert!(!magnitude.is_zero(), "shaking needs a positive magnitude");
    let mut rng = SimRng::seed_from_u64(seed);
    let m = magnitude.as_secs();
    let jobs: Vec<Job> = trace
        .jobs()
        .iter()
        .map(|j| {
            // Uniform integer offset in [-m, +m].
            let offset = rng.range_inclusive(0, 2 * m) as i128 - m as i128;
            let arrival = (j.arrival.as_secs() as i128 + offset).max(0) as u64;
            Job {
                arrival: simcore::SimTime::new(arrival),
                ..*j
            }
        })
        .collect();
    Trace::new(trace.name().to_string(), trace.nodes(), jobs)
        .expect("shaking preserves job validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{JobId, SimTime};

    fn base_trace() -> Trace {
        let jobs = (0..200)
            .map(|i| Job {
                id: JobId(0),
                arrival: SimTime::new(1_000 + i * 500),
                runtime: SimSpan::new(300 + i % 7),
                estimate: SimSpan::new(600),
                width: 1 + (i % 8) as u32,
            })
            .collect();
        Trace::new("base", 16, jobs).unwrap()
    }

    #[test]
    fn shapes_are_preserved() {
        let t = base_trace();
        let shaken = shake(&t, SimSpan::new(60), 1);
        assert_eq!(shaken.len(), t.len());
        // The multiset of (runtime, estimate, width) is unchanged.
        let key = |j: &Job| (j.runtime.as_secs(), j.estimate.as_secs(), j.width);
        let mut a: Vec<_> = t.jobs().iter().map(key).collect();
        let mut b: Vec<_> = shaken.jobs().iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn perturbations_stay_within_magnitude() {
        let t = base_trace();
        let shaken = shake(&t, SimSpan::new(60), 2);
        // Arrivals in both traces are sorted; pairwise distance after
        // sorting is bounded by the magnitude (offsets can reorder only
        // jobs closer than 2m, so sorted positions shift by <= m... the
        // robust check: each shaken arrival lies within m of *some*
        // original arrival is implied by per-job bound before sorting;
        // check the per-position bound loosely).
        for (a, b) in t.jobs().iter().zip(shaken.jobs()) {
            let d = a.arrival.as_secs().abs_diff(b.arrival.as_secs());
            assert!(d <= 120, "sorted arrival moved {d}s > 2x magnitude");
        }
    }

    #[test]
    fn shaking_is_deterministic_and_seed_sensitive() {
        let t = base_trace();
        assert_eq!(
            shake(&t, SimSpan::new(30), 5).jobs(),
            shake(&t, SimSpan::new(30), 5).jobs()
        );
        assert_ne!(
            shake(&t, SimSpan::new(30), 5).jobs(),
            shake(&t, SimSpan::new(30), 6).jobs()
        );
    }

    #[test]
    fn early_arrivals_clamp_at_zero() {
        let jobs = vec![Job {
            id: JobId(0),
            arrival: SimTime::new(5),
            runtime: SimSpan::new(10),
            estimate: SimSpan::new(10),
            width: 1,
        }];
        let t = Trace::new("t", 4, jobs).unwrap();
        // With magnitude 1000 the offset is very likely negative past zero
        // for some seed; clamping must hold for all seeds tried.
        for seed in 0..50 {
            let s = shake(&t, SimSpan::new(1_000), seed);
            assert!(s.jobs()[0].arrival >= SimTime::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "positive magnitude")]
    fn rejects_zero_magnitude() {
        shake(&base_trace(), SimSpan::ZERO, 1);
    }
}
