//! Job categorization — the paper's analytical lens.
//!
//! Table 1 of the paper splits jobs two ways:
//! * **length**: Short (runtime ≤ 1 h) vs Long (> 1 h);
//! * **width**: Narrow (≤ 8 processors) vs Wide (> 8);
//!
//! giving the four categories SN, SW, LN, LW. Section 5 adds a second,
//! orthogonal split by estimate quality: **well estimated**
//! (estimate ≤ 2 × runtime) vs **poorly estimated** (estimate > 2 × runtime).

use crate::job::Job;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use simcore::SimSpan;

/// The Short/Long × Narrow/Wide category of a job (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Short (≤ 1 h) and Narrow (≤ 8 processors).
    SN,
    /// Short and Wide (> 8 processors).
    SW,
    /// Long (> 1 h) and Narrow.
    LN,
    /// Long and Wide.
    LW,
}

impl Category {
    /// All categories, in the paper's presentation order.
    pub const ALL: [Category; 4] = [Category::SN, Category::SW, Category::LN, Category::LW];

    /// Short name as printed in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Category::SN => "SN",
            Category::SW => "SW",
            Category::LN => "LN",
            Category::LW => "LW",
        }
    }

    /// True for the Short categories.
    pub fn is_short(self) -> bool {
        matches!(self, Category::SN | Category::SW)
    }

    /// True for the Narrow categories.
    pub fn is_narrow(self) -> bool {
        matches!(self, Category::SN | Category::LN)
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The categorization thresholds. Defaults follow paper Table 1
/// (1 hour, 8 processors); configurable for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryCriteria {
    /// Jobs with runtime `<= short_max` are Short.
    pub short_max: SimSpan,
    /// Jobs with width `<= narrow_max` are Narrow.
    pub narrow_max: u32,
}

impl Default for CategoryCriteria {
    fn default() -> Self {
        CategoryCriteria {
            short_max: SimSpan::HOUR,
            narrow_max: 8,
        }
    }
}

impl CategoryCriteria {
    /// Categorize a job by its **actual runtime** and width.
    ///
    /// The paper categorizes on real behaviour (a job is "short" because it
    /// ran short), not on the user's claim; estimate quality is the separate
    /// [`EstimateQuality`] axis.
    pub fn categorize(&self, job: &Job) -> Category {
        match (job.runtime <= self.short_max, job.width <= self.narrow_max) {
            (true, true) => Category::SN,
            (true, false) => Category::SW,
            (false, true) => Category::LN,
            (false, false) => Category::LW,
        }
    }

    /// Fraction of jobs in each category, in [`Category::ALL`] order.
    /// Returns zeros for an empty trace.
    pub fn distribution(&self, trace: &Trace) -> [f64; 4] {
        let mut counts = [0usize; 4];
        for job in trace.jobs() {
            counts[self.categorize(job) as usize] += 1;
        }
        let n = trace.len().max(1) as f64;
        counts.map(|c| c as f64 / n)
    }
}

/// Estimate-quality classes from Section 5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EstimateQuality {
    /// `estimate ≤ 2 × runtime`.
    Well,
    /// `estimate > 2 × runtime`.
    Poor,
}

impl EstimateQuality {
    /// Classify a job. The boundary (exactly 2×) counts as well estimated,
    /// per the paper's "less than or equal to twice" wording.
    pub fn of(job: &Job) -> EstimateQuality {
        if job.estimate.as_secs() <= 2 * job.runtime.as_secs() {
            EstimateQuality::Well
        } else {
            EstimateQuality::Poor
        }
    }

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            EstimateQuality::Well => "well",
            EstimateQuality::Poor => "poor",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{JobId, SimTime};

    fn job(runtime: u64, estimate: u64, width: u32) -> Job {
        Job {
            id: JobId(0),
            arrival: SimTime::ZERO,
            runtime: SimSpan::new(runtime),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    #[test]
    fn four_quadrants() {
        let c = CategoryCriteria::default();
        assert_eq!(c.categorize(&job(100, 100, 2)), Category::SN);
        assert_eq!(c.categorize(&job(100, 100, 64)), Category::SW);
        assert_eq!(c.categorize(&job(7200, 7200, 2)), Category::LN);
        assert_eq!(c.categorize(&job(7200, 7200, 64)), Category::LW);
    }

    #[test]
    fn boundaries_are_inclusive_short_and_narrow() {
        let c = CategoryCriteria::default();
        // Exactly 1 hour is Short; exactly 8 processors is Narrow.
        assert_eq!(c.categorize(&job(3600, 3600, 8)), Category::SN);
        assert_eq!(c.categorize(&job(3601, 3601, 9)), Category::LW);
    }

    #[test]
    fn categorize_ignores_estimate() {
        let c = CategoryCriteria::default();
        // Estimated long but actually short: Short by runtime.
        assert_eq!(c.categorize(&job(100, 86_400, 2)), Category::SN);
    }

    #[test]
    fn labels_and_predicates() {
        assert_eq!(Category::SN.label(), "SN");
        assert_eq!(Category::LW.to_string(), "LW");
        assert!(Category::SW.is_short() && !Category::SW.is_narrow());
        assert!(Category::LN.is_narrow() && !Category::LN.is_short());
        assert_eq!(Category::ALL.len(), 4);
    }

    #[test]
    fn custom_criteria() {
        let c = CategoryCriteria {
            short_max: SimSpan::new(100),
            narrow_max: 4,
        };
        assert_eq!(c.categorize(&job(150, 150, 4)), Category::LN);
        assert_eq!(c.categorize(&job(50, 50, 5)), Category::SW);
    }

    #[test]
    fn distribution_sums_to_one() {
        let jobs = vec![
            job(10, 10, 1),
            job(10, 10, 16),
            job(7000, 7000, 1),
            job(7000, 7000, 16),
        ];
        let t = Trace::new("t", 32, jobs).unwrap();
        let d = CategoryCriteria::default().distribution(&t);
        assert_eq!(d, [0.25, 0.25, 0.25, 0.25]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_of_empty_trace_is_zeros() {
        let t = Trace::new("t", 8, vec![]).unwrap();
        assert_eq!(CategoryCriteria::default().distribution(&t), [0.0; 4]);
    }

    #[test]
    fn estimate_quality_boundary() {
        assert_eq!(
            EstimateQuality::of(&job(100, 200, 1)),
            EstimateQuality::Well
        );
        assert_eq!(
            EstimateQuality::of(&job(100, 201, 1)),
            EstimateQuality::Poor
        );
        assert_eq!(
            EstimateQuality::of(&job(100, 100, 1)),
            EstimateQuality::Well
        );
        assert_eq!(EstimateQuality::Well.label(), "well");
        assert_eq!(EstimateQuality::Poor.label(), "poor");
    }
}
