//! Standard Workload Format (SWF) v2 parsing and writing.
//!
//! SWF is the format of Feitelson's Parallel Workloads Archive — the source
//! of the CTC and SDSC logs the paper uses. Supporting it means a user who
//! *does* have the real logs can drop them straight into this simulator and
//! rerun every experiment against them; our calibrated synthetic traces are
//! only the default.
//!
//! An SWF file is line-oriented:
//! * header comment lines start with `;` and may carry `; Key: Value` pairs
//!   (we extract `MaxProcs`, `MaxNodes`, and `Computer`);
//! * each data line has 18 whitespace-separated fields, `-1` meaning
//!   "unknown".
//!
//! Field indices (0-based) used here: 0 job number, 1 submit time,
//! 3 run time, 4 allocated processors, 7 requested processors,
//! 8 requested (estimated) time, 10 status.
//!
//! Real archive files are occasionally dirty — truncated last lines,
//! stray non-numeric tokens. The default [`ParseMode::Strict`] aborts at
//! the first malformed line; [`ParseMode::Lenient`] skips such lines and
//! counts them per field in a [`ParseReport`] so the caller can decide
//! whether the damage is tolerable.

use crate::job::Job;
use crate::trace::{Trace, TraceError};
use simcore::{JobId, SimSpan, SimTime};
use std::collections::BTreeMap;

/// One raw SWF record, fields as written (after `-1` → `None` mapping for
/// the ones we interpret). Keeps enough to rebuild a valid simulator job.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfRecord {
    /// Field 0: job number.
    pub job_number: i64,
    /// Field 1: submit time, seconds.
    pub submit: i64,
    /// Field 3: run time, seconds (`None` if unknown).
    pub run_time: Option<i64>,
    /// Field 4: number of allocated processors.
    pub allocated_procs: Option<i64>,
    /// Field 7: number of requested processors.
    pub requested_procs: Option<i64>,
    /// Field 8: requested (estimated) time, seconds.
    pub requested_time: Option<i64>,
    /// Field 10: completion status (1 = completed OK).
    pub status: Option<i64>,
}

/// Parse outcome: the usable trace plus per-reason drop counts.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfParse {
    /// The cleaned trace.
    pub trace: Trace,
    /// Header key/value pairs found in `;`-comments.
    pub header: BTreeMap<String, String>,
    /// Records dropped, by reason.
    pub dropped: DropCounts,
    /// Malformed lines skipped by a lenient parse (all zero under
    /// [`ParseMode::Strict`], which aborts instead).
    pub report: ParseReport,
}

/// How the parser reacts to a malformed data line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseMode {
    /// Abort the whole parse at the first malformed line (the default).
    #[default]
    Strict,
    /// Skip malformed lines, counting each in a [`ParseReport`].
    Lenient,
}

/// Malformed data lines skipped by a lenient parse, counted per field.
///
/// "Malformed" here means the line shape itself is wrong — too few
/// fields, or a field that is not a number. Records that parse but fail
/// the *cleaning* rules (unknown runtime, too wide, …) are counted in
/// [`DropCounts`] instead, in both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParseReport {
    /// Lines with fewer than the 18 required fields (truncated lines
    /// land here too).
    pub short_lines: u32,
    /// Lines whose field 0 (job number) was non-numeric.
    pub bad_job_number: u32,
    /// Lines whose field 1 (submit time) was non-numeric.
    pub bad_submit: u32,
    /// Lines whose field 3 (run time) was non-numeric.
    pub bad_run_time: u32,
    /// Lines whose field 4 (allocated processors) was non-numeric.
    pub bad_allocated_procs: u32,
    /// Lines whose field 7 (requested processors) was non-numeric.
    pub bad_requested_procs: u32,
    /// Lines whose field 8 (requested time) was non-numeric.
    pub bad_requested_time: u32,
    /// Lines whose field 10 (status) was non-numeric.
    pub bad_status: u32,
}

impl ParseReport {
    /// Total malformed lines skipped.
    pub fn total(&self) -> u32 {
        self.short_lines
            + self.bad_job_number
            + self.bad_submit
            + self.bad_run_time
            + self.bad_allocated_procs
            + self.bad_requested_procs
            + self.bad_requested_time
            + self.bad_status
    }

    /// Compact human-readable breakdown, e.g. `"2 short, 1 bad run time"`.
    pub fn summary(&self) -> String {
        let parts: Vec<String> = [
            (self.short_lines, "short"),
            (self.bad_job_number, "bad job number"),
            (self.bad_submit, "bad submit time"),
            (self.bad_run_time, "bad run time"),
            (self.bad_allocated_procs, "bad allocated procs"),
            (self.bad_requested_procs, "bad requested procs"),
            (self.bad_requested_time, "bad requested time"),
            (self.bad_status, "bad status"),
        ]
        .iter()
        .filter(|(n, _)| *n > 0)
        .map(|(n, what)| format!("{n} {what}"))
        .collect();
        if parts.is_empty() {
            "clean".to_string()
        } else {
            parts.join(", ")
        }
    }

    fn count_bad_field(&mut self, idx: usize) {
        match idx {
            0 => self.bad_job_number += 1,
            1 => self.bad_submit += 1,
            3 => self.bad_run_time += 1,
            4 => self.bad_allocated_procs += 1,
            7 => self.bad_requested_procs += 1,
            8 => self.bad_requested_time += 1,
            _ => self.bad_status += 1,
        }
    }
}

/// Why records were dropped during cleaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DropCounts {
    /// Unknown/zero runtime (cancelled before start, or missing data).
    pub bad_runtime: u32,
    /// Unknown/zero processor request.
    pub bad_width: u32,
    /// Width beyond machine size.
    pub too_wide: u32,
    /// Negative submit time.
    pub bad_submit: u32,
}

impl DropCounts {
    /// Total records dropped.
    pub fn total(&self) -> u32 {
        self.bad_runtime + self.bad_width + self.too_wide + self.bad_submit
    }
}

/// Error from SWF parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum SwfError {
    /// A data line did not have at least 18 numeric fields.
    MalformedLine {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// No machine size: no `MaxProcs`/`MaxNodes` header and no override.
    UnknownMachineSize,
    /// The cleaned job set failed trace validation.
    Trace(TraceError),
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::MalformedLine { line, reason } => {
                write!(f, "SWF line {line}: {reason}")
            }
            SwfError::UnknownMachineSize => {
                write!(
                    f,
                    "no MaxProcs/MaxNodes header; pass an explicit machine size"
                )
            }
            SwfError::Trace(e) => write!(f, "trace validation: {e}"),
        }
    }
}

impl std::error::Error for SwfError {}

impl From<TraceError> for SwfError {
    fn from(e: TraceError) -> Self {
        SwfError::Trace(e)
    }
}

fn parse_field(s: &str, line: usize) -> Result<i64, SwfError> {
    // SWF in the wild sometimes uses floats for times; accept and truncate.
    if let Ok(v) = s.parse::<i64>() {
        return Ok(v);
    }
    if let Ok(v) = s.parse::<f64>() {
        if v.is_finite() {
            return Ok(v as i64);
        }
    }
    Err(SwfError::MalformedLine {
        line,
        reason: format!("unparseable field {s:?}"),
    })
}

fn opt(v: i64) -> Option<i64> {
    if v < 0 {
        None
    } else {
        Some(v)
    }
}

/// Raw records, header pairs, and the malformed-line report of one parse.
pub type RawParse = (Vec<SwfRecord>, BTreeMap<String, String>, ParseReport);

/// Parse raw SWF text into records and header pairs ([`ParseMode::Strict`]).
pub fn parse_records(input: &str) -> Result<(Vec<SwfRecord>, BTreeMap<String, String>), SwfError> {
    parse_records_with(input, ParseMode::Strict).map(|(records, header, _)| (records, header))
}

/// Parse raw SWF text into records, header pairs and a [`ParseReport`].
///
/// Under [`ParseMode::Strict`] the report is always all-zero (the first
/// malformed line aborts the parse); under [`ParseMode::Lenient`] each
/// malformed line is skipped and counted.
pub fn parse_records_with(input: &str, mode: ParseMode) -> Result<RawParse, SwfError> {
    let mut header = BTreeMap::new();
    let mut records = Vec::new();
    let mut report = ParseReport::default();
    for (i, raw) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix(';') {
            if let Some((key, value)) = comment.split_once(':') {
                header.insert(key.trim().to_string(), value.trim().to_string());
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 18 {
            match mode {
                ParseMode::Strict => {
                    return Err(SwfError::MalformedLine {
                        line: line_no,
                        reason: format!("expected 18 fields, found {}", fields.len()),
                    })
                }
                ParseMode::Lenient => {
                    report.short_lines += 1;
                    continue;
                }
            }
        }
        // Each field parse carries its index so a lenient skip can be
        // attributed to the right per-field counter.
        let f = |idx: usize| parse_field(fields[idx], line_no).map_err(|e| (idx, e));
        let record = (|| {
            Ok(SwfRecord {
                job_number: f(0)?,
                submit: f(1)?,
                run_time: opt(f(3)?),
                allocated_procs: opt(f(4)?),
                requested_procs: opt(f(7)?),
                requested_time: opt(f(8)?),
                status: opt(f(10)?),
            })
        })();
        match record {
            Ok(r) => records.push(r),
            Err((idx, e)) => match mode {
                ParseMode::Strict => return Err(e),
                ParseMode::Lenient => report.count_bad_field(idx),
            },
        }
    }
    Ok((records, header, report))
}

/// Parse SWF text into a cleaned, simulation-ready [`Trace`].
///
/// ```
/// let text = "\
/// ; MaxProcs: 64
/// 1 0 -1 120 4 -1 -1 4 600 -1 1 1 1 1 1 1 -1 -1
/// 2 30 -1 300 8 -1 -1 8 300 -1 1 2 1 1 1 1 -1 -1
/// ";
/// let parsed = workload::swf::parse_trace(text, "demo", None).unwrap();
/// assert_eq!(parsed.trace.len(), 2);
/// assert_eq!(parsed.trace.nodes(), 64);
/// assert_eq!(parsed.trace.jobs()[0].estimate.as_secs(), 600);
/// ```
///
/// Cleaning rules (the standard ones from the backfilling literature):
/// * width = requested processors, falling back to allocated; drop if
///   unknown or zero;
/// * runtime must be known and positive;
/// * estimate = requested time, clamped **up** to the runtime when the job
///   overran its limit (so `estimate ≥ runtime` always holds); missing
///   estimates fall back to the runtime (i.e. accurate);
/// * machine size from `nodes_override`, else the `MaxProcs`/`MaxNodes`
///   header; jobs wider than the machine are dropped.
pub fn parse_trace(
    input: &str,
    name: &str,
    nodes_override: Option<u32>,
) -> Result<SwfParse, SwfError> {
    parse_trace_with(input, name, nodes_override, ParseMode::Strict)
}

/// [`parse_trace`] with an explicit [`ParseMode`]. Lenient parses skip
/// malformed lines (reported in [`SwfParse::report`]) instead of failing.
pub fn parse_trace_with(
    input: &str,
    name: &str,
    nodes_override: Option<u32>,
    mode: ParseMode,
) -> Result<SwfParse, SwfError> {
    let (records, header, report) = parse_records_with(input, mode)?;
    let header_nodes = ["MaxProcs", "MaxNodes"]
        .iter()
        .find_map(|k| header.get(*k))
        .and_then(|v| v.parse::<u32>().ok());
    let nodes = nodes_override
        .or(header_nodes)
        .ok_or(SwfError::UnknownMachineSize)?;

    let mut dropped = DropCounts::default();
    let mut jobs = Vec::with_capacity(records.len());
    for r in &records {
        if r.submit < 0 {
            dropped.bad_submit += 1;
            continue;
        }
        let Some(runtime) = r.run_time.filter(|&t| t > 0) else {
            dropped.bad_runtime += 1;
            continue;
        };
        let width = match r.requested_procs.filter(|&p| p > 0).or(r.allocated_procs) {
            Some(p) if p > 0 => p as u64,
            _ => {
                dropped.bad_width += 1;
                continue;
            }
        };
        if width > nodes as u64 {
            dropped.too_wide += 1;
            continue;
        }
        let runtime = SimSpan::new(runtime as u64);
        let estimate = match r.requested_time.filter(|&t| t > 0) {
            Some(t) => SimSpan::new(t as u64).max(runtime),
            None => runtime,
        };
        jobs.push(Job {
            id: JobId(0), // reassigned by Trace::new
            arrival: SimTime::new(r.submit as u64),
            runtime,
            estimate,
            width: width as u32,
        });
    }
    let trace = Trace::new(name, nodes, jobs)?;
    Ok(SwfParse {
        trace,
        header,
        dropped,
        report,
    })
}

/// Serialize a trace to SWF text (round-trippable through [`parse_trace`]).
pub fn write_trace(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!("; Computer: {}\n", trace.name()));
    out.push_str(&format!("; MaxProcs: {}\n", trace.nodes()));
    out.push_str("; Generated by backfill-sim\n");
    for job in trace.jobs() {
        // 18 fields; unknown fields written as -1.
        out.push_str(&format!(
            "{} {} -1 {} {} -1 -1 {} {} -1 1 -1 -1 -1 -1 -1 -1 -1\n",
            job.id.0 + 1,
            job.arrival.as_secs(),
            job.runtime.as_secs(),
            job.width,
            job.width,
            job.estimate.as_secs(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Computer: Test SP2
; MaxProcs: 128
; Note: tiny sample
1 0 5 100 4 -1 -1 4 200 -1 1 1 1 1 1 1 -1 -1
2 60 2 3600 -1 -1 -1 16 7200 -1 1 2 1 1 1 1 -1 -1
3 120 0 -1 8 -1 -1 8 100 -1 0 3 1 1 1 1 -1 -1
4 180 1 50 256 -1 -1 256 100 -1 1 4 1 1 1 1 -1 -1
";

    #[test]
    fn parses_header_pairs() {
        let (_, header) = parse_records(SAMPLE).unwrap();
        assert_eq!(header.get("MaxProcs").unwrap(), "128");
        assert_eq!(header.get("Computer").unwrap(), "Test SP2");
    }

    #[test]
    fn cleans_and_builds_trace() {
        let parsed = parse_trace(SAMPLE, "test", None).unwrap();
        // Job 3 has unknown runtime, job 4 is wider than 128.
        assert_eq!(parsed.trace.len(), 2);
        assert_eq!(parsed.dropped.bad_runtime, 1);
        assert_eq!(parsed.dropped.too_wide, 1);
        assert_eq!(parsed.dropped.total(), 2);
        let j0 = &parsed.trace.jobs()[0];
        assert_eq!(j0.arrival, SimTime::new(0));
        assert_eq!(j0.runtime, SimSpan::new(100));
        assert_eq!(j0.estimate, SimSpan::new(200));
        assert_eq!(j0.width, 4);
        assert_eq!(parsed.trace.nodes(), 128);
    }

    #[test]
    fn nodes_override_wins_over_header() {
        let parsed = parse_trace(SAMPLE, "test", Some(300)).unwrap();
        assert_eq!(parsed.trace.nodes(), 300);
        // Width-256 job now fits.
        assert_eq!(parsed.trace.len(), 3);
    }

    #[test]
    fn missing_machine_size_is_an_error() {
        let input = "1 0 5 100 4 -1 -1 4 200 -1 1 1 1 1 1 1 -1 -1\n";
        assert_eq!(
            parse_trace(input, "t", None),
            Err(SwfError::UnknownMachineSize)
        );
        assert!(parse_trace(input, "t", Some(8)).is_ok());
    }

    #[test]
    fn estimate_clamped_up_to_runtime() {
        // Runtime 500 > requested time 100 (job overran, scheduler killed
        // late): estimate becomes 500 so the invariant holds.
        let input = "; MaxProcs: 8\n1 0 5 500 4 -1 -1 4 100 -1 1 1 1 1 1 1 -1 -1\n";
        let parsed = parse_trace(input, "t", None).unwrap();
        assert_eq!(parsed.trace.jobs()[0].estimate, SimSpan::new(500));
    }

    #[test]
    fn missing_estimate_falls_back_to_runtime() {
        let input = "; MaxProcs: 8\n1 0 5 500 4 -1 -1 4 -1 -1 1 1 1 1 1 1 -1 -1\n";
        let parsed = parse_trace(input, "t", None).unwrap();
        assert_eq!(parsed.trace.jobs()[0].estimate, SimSpan::new(500));
    }

    #[test]
    fn requested_procs_fall_back_to_allocated() {
        let input = "; MaxProcs: 8\n1 0 5 10 6 -1 -1 -1 20 -1 1 1 1 1 1 1 -1 -1\n";
        let parsed = parse_trace(input, "t", None).unwrap();
        assert_eq!(parsed.trace.jobs()[0].width, 6);
    }

    #[test]
    fn short_line_is_an_error() {
        let input = "; MaxProcs: 8\n1 0 5\n";
        assert!(matches!(
            parse_trace(input, "t", None),
            Err(SwfError::MalformedLine { line: 2, .. })
        ));
    }

    #[test]
    fn garbage_field_is_an_error() {
        let input = "; MaxProcs: 8\n1 0 5 abc 4 -1 -1 4 200 -1 1 1 1 1 1 1 -1 -1\n";
        assert!(matches!(
            parse_trace(input, "t", None),
            Err(SwfError::MalformedLine { .. })
        ));
    }

    #[test]
    fn float_times_are_accepted() {
        let input = "; MaxProcs: 8\n1 0.0 5 100.5 4 -1 -1 4 200 -1 1 1 1 1 1 1 -1 -1\n";
        let parsed = parse_trace(input, "t", None).unwrap();
        assert_eq!(parsed.trace.jobs()[0].runtime, SimSpan::new(100));
    }

    #[test]
    fn write_then_parse_round_trips() {
        let parsed = parse_trace(SAMPLE, "roundtrip", None).unwrap();
        let text = write_trace(&parsed.trace);
        let reparsed = parse_trace(&text, "roundtrip", None).unwrap();
        assert_eq!(reparsed.trace.nodes(), parsed.trace.nodes());
        assert_eq!(reparsed.trace.jobs(), parsed.trace.jobs());
        assert_eq!(reparsed.dropped.total(), 0);
    }

    #[test]
    fn empty_input_gives_empty_trace_with_override() {
        let parsed = parse_trace("; MaxProcs: 4\n", "empty", None).unwrap();
        assert!(parsed.trace.is_empty());
    }

    /// A dirty trace mixing truncated, non-numeric and short-field lines:
    /// strict aborts at the first bad line; lenient keeps the good jobs
    /// and attributes every skip to the right per-field counter.
    const DIRTY: &str = "\
; MaxProcs: 64
1 0 5 100 4 -1 -1 4 200 -1 1 1 1 1 1 1 -1 -1
2 30 5
3 60 5 xyz 4 -1 -1 4 200 -1 1 1 1 1 1 1 -1 -1
4 90 5 100 4 -1 -1 4 200 -1 oops 1 1 1 1 1 -1 -1
5 120 5 100 4 -1 -1 4 200 -1 1 1 1 1 1 1 -1 -1
6 150 5 100 4";

    #[test]
    fn strict_mode_aborts_on_the_first_malformed_line() {
        assert!(matches!(
            parse_trace(DIRTY, "dirty", None),
            Err(SwfError::MalformedLine { line: 3, .. })
        ));
    }

    #[test]
    fn lenient_mode_skips_malformed_lines_and_reports_per_field() {
        let parsed = parse_trace_with(DIRTY, "dirty", None, ParseMode::Lenient).unwrap();
        // Jobs 1 and 5 survive; lines 3/7 are short (line 7 truncated
        // mid-record), line 4 has a non-numeric run time, line 5 a
        // non-numeric status.
        assert_eq!(parsed.trace.len(), 2);
        assert_eq!(
            parsed
                .trace
                .jobs()
                .iter()
                .map(|j| j.arrival.as_secs())
                .collect::<Vec<_>>(),
            vec![0, 120]
        );
        assert_eq!(parsed.report.short_lines, 2);
        assert_eq!(parsed.report.bad_run_time, 1);
        assert_eq!(parsed.report.bad_status, 1);
        assert_eq!(parsed.report.total(), 4);
        assert_eq!(
            parsed.report.summary(),
            "2 short, 1 bad run time, 1 bad status"
        );
    }

    #[test]
    fn clean_parse_reports_zero_skips_in_both_modes() {
        let strict = parse_trace(SAMPLE, "t", None).unwrap();
        assert_eq!(strict.report.total(), 0);
        let lenient = parse_trace_with(SAMPLE, "t", None, ParseMode::Lenient).unwrap();
        assert_eq!(lenient, strict);
        assert_eq!(lenient.report.summary(), "clean");
    }
}
