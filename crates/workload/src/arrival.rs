//! Job arrival processes.
//!
//! Supercomputer submissions are bursty and follow a strong daily cycle:
//! heavy during working hours, light at night. We model arrivals as a
//! non-homogeneous Poisson process whose rate is modulated by a 24-hour
//! profile, sampled by thinning (Lewis & Shedler 1979). A plain homogeneous
//! process is available for controlled experiments.

use crate::dist::Sample;
use simcore::{SimRng, SimSpan, SimTime};

/// A generator of successive arrival instants.
pub trait ArrivalProcess {
    /// The next arrival strictly after `after`.
    fn next_after(&self, after: SimTime, rng: &mut SimRng) -> SimTime;

    /// Generate `n` arrivals starting from time zero.
    fn generate(&self, n: usize, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::with_capacity(n);
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            t = self.next_after(t, rng);
            out.push(t);
        }
        out
    }
}

/// Homogeneous Poisson process with the given mean inter-arrival gap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean_gap: f64,
}

impl Poisson {
    /// Create from the mean gap between arrivals, in seconds.
    pub fn new(mean_gap_secs: f64) -> Self {
        assert!(
            mean_gap_secs.is_finite() && mean_gap_secs > 0.0,
            "mean inter-arrival gap must be positive, got {mean_gap_secs}"
        );
        Poisson {
            mean_gap: mean_gap_secs,
        }
    }
}

impl ArrivalProcess for Poisson {
    fn next_after(&self, after: SimTime, rng: &mut SimRng) -> SimTime {
        let gap = -rng.f64_open().ln() * self.mean_gap;
        // Round up so arrivals always advance (integral clock).
        after + SimSpan::new(gap.ceil().max(1.0) as u64)
    }
}

/// Non-homogeneous Poisson process with a 24-hour rate profile (and an
/// optional weekend damping factor), sampled by thinning against the
/// profile's peak rate.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalPoisson {
    /// Base mean gap (as if the rate were flat at its average).
    mean_gap: f64,
    /// 24 multiplicative weights, one per hour of day, mean-normalized.
    hourly: [f64; 24],
    /// Rate multiplier on days 0–4 of each 7-day week.
    weekday_mult: f64,
    /// Rate multiplier on days 5–6 of each 7-day week.
    weekend_mult: f64,
    /// max rate multiplier — the thinning envelope.
    peak: f64,
}

impl DiurnalPoisson {
    /// Create from the average mean gap and 24 non-negative hourly weights
    /// (relative, any scale; they are normalized to mean 1).
    pub fn new(mean_gap_secs: f64, hourly_weights: [f64; 24]) -> Self {
        assert!(
            mean_gap_secs.is_finite() && mean_gap_secs > 0.0,
            "mean inter-arrival gap must be positive, got {mean_gap_secs}"
        );
        let sum: f64 = hourly_weights.iter().sum();
        assert!(sum > 0.0, "hourly weights must not all be zero");
        for &w in &hourly_weights {
            assert!(w >= 0.0 && w.is_finite(), "bad hourly weight {w}");
        }
        let mean = sum / 24.0;
        let hourly = hourly_weights.map(|w| w / mean);
        let peak = hourly.iter().cloned().fold(0.0, f64::max);
        DiurnalPoisson {
            mean_gap: mean_gap_secs,
            hourly,
            weekday_mult: 1.0,
            weekend_mult: 1.0,
            peak,
        }
    }

    /// Add a weekly cycle: days 5–6 of each 7-day week run at `factor`
    /// times the weekday rate (e.g. `0.4` for quiet weekends). Multipliers
    /// are renormalized so the overall mean gap is preserved:
    /// `(5·wd + 2·we)/7 = 1` with `we = factor·wd`.
    #[must_use]
    pub fn with_weekend_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "weekend factor must be positive, got {factor}"
        );
        let wd = 7.0 / (5.0 + 2.0 * factor);
        self.weekday_mult = wd;
        self.weekend_mult = factor * wd;
        let hour_peak = self.hourly.iter().cloned().fold(0.0, f64::max);
        self.peak = hour_peak * self.weekday_mult.max(self.weekend_mult);
        self
    }

    /// The default working-hours profile: low overnight, ramping from 08:00,
    /// peaking 10:00–17:00, tapering through the evening. Shape follows the
    /// canonical daily-cycle plots from the Parallel Workloads Archive.
    pub fn working_hours(mean_gap_secs: f64) -> Self {
        let hourly = [
            0.4, 0.3, 0.25, 0.2, 0.2, 0.25, // 00-05
            0.4, 0.6, 1.0, 1.5, 1.9, 2.0, // 06-11
            1.9, 1.9, 2.0, 2.0, 1.9, 1.7, // 12-17
            1.4, 1.1, 0.9, 0.7, 0.6, 0.5, // 18-23
        ];
        DiurnalPoisson::new(mean_gap_secs, hourly)
    }

    fn rate_multiplier(&self, t: SimTime) -> f64 {
        let hour = (t.as_secs() / 3600) % 24;
        let day_of_week = (t.as_secs() / 86_400) % 7;
        let weekly = if day_of_week >= 5 {
            self.weekend_mult
        } else {
            self.weekday_mult
        };
        self.hourly[hour as usize] * weekly
    }
}

impl ArrivalProcess for DiurnalPoisson {
    fn next_after(&self, after: SimTime, rng: &mut SimRng) -> SimTime {
        // Thinning: propose from the peak-rate envelope, accept with
        // probability rate(t)/peak.
        let envelope_gap = self.mean_gap / self.peak;
        let mut t = after;
        loop {
            let gap = -rng.f64_open().ln() * envelope_gap;
            t += SimSpan::new(gap.ceil().max(1.0) as u64);
            if rng.f64() * self.peak < self.rate_multiplier(t) {
                return t;
            }
        }
    }
}

/// An arrival process driven by an arbitrary positive gap distribution
/// (e.g. Weibull for burstier-than-Poisson traffic).
#[derive(Debug, Clone)]
pub struct RenewalProcess<D: Sample> {
    gap: D,
}

impl<D: Sample> RenewalProcess<D> {
    /// Create from a gap distribution; non-positive draws are clamped to 1 s.
    pub fn new(gap: D) -> Self {
        RenewalProcess { gap }
    }
}

impl<D: Sample> ArrivalProcess for RenewalProcess<D> {
    fn next_after(&self, after: SimTime, rng: &mut SimRng) -> SimTime {
        after + SimSpan::new(self.gap.sample_clamped_int(rng, 1, u64::MAX / 4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Weibull;

    #[test]
    fn poisson_arrivals_strictly_increase() {
        let p = Poisson::new(100.0);
        let mut rng = SimRng::seed_from_u64(1);
        let arrivals = p.generate(1000, &mut rng);
        for w in arrivals.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn poisson_mean_gap_matches() {
        let p = Poisson::new(300.0);
        let mut rng = SimRng::seed_from_u64(2);
        let n = 50_000;
        let arrivals = p.generate(n, &mut rng);
        let mean_gap = arrivals.last().unwrap().as_secs() as f64 / n as f64;
        // Integral rounding (ceil) biases up by ~0.5 s.
        assert!((mean_gap - 300.0).abs() < 5.0, "mean gap {mean_gap}");
    }

    #[test]
    fn diurnal_peak_hours_receive_more_arrivals() {
        let d = DiurnalPoisson::working_hours(60.0);
        let mut rng = SimRng::seed_from_u64(3);
        let arrivals = d.generate(100_000, &mut rng);
        let mut by_hour = [0u32; 24];
        for a in &arrivals {
            by_hour[((a.as_secs() / 3600) % 24) as usize] += 1;
        }
        // 14:00 is at profile weight 2.0, 03:00 at 0.2: expect a big ratio.
        let ratio = by_hour[14] as f64 / by_hour[3].max(1) as f64;
        assert!(ratio > 4.0, "peak/trough ratio {ratio} too flat");
    }

    #[test]
    fn diurnal_overall_rate_matches_mean_gap() {
        let d = DiurnalPoisson::working_hours(120.0);
        let mut rng = SimRng::seed_from_u64(4);
        let n = 50_000;
        let arrivals = d.generate(n, &mut rng);
        let mean_gap = arrivals.last().unwrap().as_secs() as f64 / n as f64;
        assert!(
            (mean_gap - 120.0).abs() / 120.0 < 0.08,
            "mean gap {mean_gap}"
        );
    }

    #[test]
    fn diurnal_arrivals_strictly_increase() {
        let d = DiurnalPoisson::working_hours(10.0);
        let mut rng = SimRng::seed_from_u64(5);
        let arrivals = d.generate(5000, &mut rng);
        for w in arrivals.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn weekend_factor_damps_weekend_arrivals() {
        let d = DiurnalPoisson::working_hours(60.0).with_weekend_factor(0.3);
        let mut rng = SimRng::seed_from_u64(21);
        let arrivals = d.generate(200_000, &mut rng);
        let mut weekday = 0u64;
        let mut weekend = 0u64;
        for a in &arrivals {
            if (a.as_secs() / 86_400) % 7 >= 5 {
                weekend += 1;
            } else {
                weekday += 1;
            }
        }
        // Per-day rates: weekend days should see ~0.3x the weekday rate.
        let per_weekday = weekday as f64 / 5.0;
        let per_weekend = weekend as f64 / 2.0;
        let ratio = per_weekend / per_weekday;
        assert!((ratio - 0.3).abs() < 0.05, "weekend/weekday ratio {ratio}");
    }

    #[test]
    fn weekend_factor_preserves_mean_gap() {
        let d = DiurnalPoisson::working_hours(120.0).with_weekend_factor(0.4);
        let mut rng = SimRng::seed_from_u64(22);
        let n = 50_000;
        let arrivals = d.generate(n, &mut rng);
        let mean_gap = arrivals.last().unwrap().as_secs() as f64 / n as f64;
        assert!(
            (mean_gap - 120.0).abs() / 120.0 < 0.08,
            "mean gap {mean_gap}"
        );
    }

    #[test]
    #[should_panic(expected = "weekend factor must be positive")]
    fn weekend_factor_rejects_zero() {
        let _ = DiurnalPoisson::working_hours(60.0).with_weekend_factor(0.0);
    }

    #[test]
    fn renewal_with_weibull_gaps() {
        let r = RenewalProcess::new(Weibull::new(0.5, 50.0));
        let mut rng = SimRng::seed_from_u64(6);
        let arrivals = r.generate(10_000, &mut rng);
        for w in arrivals.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Weibull(0.5, 50) has mean 100.
        let mean_gap = arrivals.last().unwrap().as_secs() as f64 / 10_000.0;
        assert!(
            (mean_gap - 100.0).abs() / 100.0 < 0.1,
            "mean gap {mean_gap}"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = Poisson::new(100.0);
        let a = p.generate(100, &mut SimRng::seed_from_u64(7));
        let b = p.generate(100, &mut SimRng::seed_from_u64(7));
        let c = p.generate(100, &mut SimRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn poisson_rejects_zero_gap() {
        Poisson::new(0.0);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn diurnal_rejects_zero_profile() {
        DiurnalPoisson::new(10.0, [0.0; 24]);
    }
}
