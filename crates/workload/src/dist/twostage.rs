//! The two-stage uniform distribution of Lublin & Feitelson (2003).
//!
//! Used for the log₂ of parallel-job sizes: with probability `prob` the
//! value is uniform on `[low, med]`, otherwise uniform on `[med, high]`.
//! This captures the empirical shape where most jobs are small-to-medium
//! with a plateau of large ones, without committing to a parametric tail.

use super::Sample;
use simcore::SimRng;

/// Two-stage uniform on `[low, high]` with breakpoint `med`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoStageUniform {
    low: f64,
    med: f64,
    high: f64,
    prob: f64,
}

impl TwoStageUniform {
    /// Create from `low ≤ med ≤ high` and the first-stage probability.
    pub fn new(low: f64, med: f64, high: f64, prob: f64) -> Self {
        assert!(
            low.is_finite() && med.is_finite() && high.is_finite(),
            "two-stage uniform bounds must be finite"
        );
        assert!(
            low <= med && med <= high,
            "need low <= med <= high, got {low}/{med}/{high}"
        );
        assert!(
            (0.0..=1.0).contains(&prob),
            "stage probability must be in [0,1], got {prob}"
        );
        TwoStageUniform {
            low,
            med,
            high,
            prob,
        }
    }

    /// Theoretical mean.
    pub fn mean(&self) -> f64 {
        self.prob * 0.5 * (self.low + self.med) + (1.0 - self.prob) * 0.5 * (self.med + self.high)
    }
}

impl Sample for TwoStageUniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        if rng.chance(self.prob) {
            self.low + (self.med - self.low) * rng.f64()
        } else {
            self.med + (self.high - self.med) * rng.f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::moments;
    use super::*;

    #[test]
    fn stays_in_range() {
        let d = TwoStageUniform::new(1.0, 3.0, 9.0, 0.7);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=9.0).contains(&x));
        }
    }

    #[test]
    fn first_stage_mass_matches_prob() {
        let d = TwoStageUniform::new(0.0, 1.0, 10.0, 0.8);
        let mut rng = SimRng::seed_from_u64(2);
        let n = 100_000;
        let below = (0..n).filter(|_| d.sample(&mut rng) < 1.0).count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.01, "first-stage mass {frac}");
    }

    #[test]
    fn mean_matches_theory() {
        let d = TwoStageUniform::new(2.0, 4.0, 10.0, 0.6);
        // 0.6*3 + 0.4*7 = 4.6
        assert!((d.mean() - 4.6).abs() < 1e-12);
        let (mean, _) = moments(&d, 3, 200_000);
        assert!((mean - 4.6).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn degenerate_stages() {
        // prob = 1: plain uniform on [low, med].
        let d = TwoStageUniform::new(0.0, 2.0, 100.0, 1.0);
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) <= 2.0);
        }
        // All points equal: point mass.
        let d = TwoStageUniform::new(5.0, 5.0, 5.0, 0.5);
        assert_eq!(d.sample(&mut SimRng::seed_from_u64(5)), 5.0);
    }

    #[test]
    #[should_panic(expected = "low <= med <= high")]
    fn rejects_disordered_bounds() {
        TwoStageUniform::new(3.0, 2.0, 5.0, 0.5);
    }
}
