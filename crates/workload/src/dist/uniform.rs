//! Continuous uniform distribution.

use super::Sample;
use simcore::SimRng;

/// Uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Create a uniform sampler. Panics if the bounds are not finite and
    /// ordered (`lo <= hi`; equal bounds give a point mass).
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad uniform bounds [{lo}, {hi})"
        );
        Uniform { lo, hi }
    }

    /// Theoretical mean `(lo + hi) / 2`.
    pub fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.f64()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::moments;
    use super::*;

    #[test]
    fn stays_in_range() {
        let d = Uniform::new(2.0, 5.0);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn mean_and_variance_match_theory() {
        let d = Uniform::new(10.0, 20.0);
        let (mean, var) = moments(&d, 2, 100_000);
        assert!((mean - 15.0).abs() < 0.05, "mean {mean}");
        // Var = (hi-lo)^2/12 = 100/12 ≈ 8.333
        assert!((var - 100.0 / 12.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn point_mass_when_bounds_equal() {
        let d = Uniform::new(3.0, 3.0);
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(d.sample(&mut rng), 3.0);
    }

    #[test]
    #[should_panic(expected = "bad uniform bounds")]
    fn rejects_reversed_bounds() {
        Uniform::new(5.0, 2.0);
    }
}
