//! Zipf distribution over `{1, …, n}`.

use super::Sample;
use simcore::SimRng;

/// Zipf with exponent `s >= 0` over ranks `1..=n`:
/// `P(k) ∝ 1/k^s`. `s = 0` is uniform.
///
/// Sampling is by inverse CDF over a precomputed cumulative table —
/// exact, O(log n) per draw, and fine for the `n ≤ few hundred` rank
/// spaces workload models use (e.g. processor counts).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf sampler over `1..=n` with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf exponent must be >= 0, got {s}"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Zipf { cumulative }
    }

    /// Draw a rank in `1..=n`.
    pub fn sample_rank(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        // First index whose cumulative weight exceeds u; u < 1 = last entry,
        // so the index is always in range (clamped for belt and braces).
        let idx = self.cumulative.partition_point(|&c| c <= u);
        (idx + 1).min(self.cumulative.len())
    }
}

impl Sample for Zipf {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_rank(rng) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_counts(d: &Zipf, n: usize, draws: usize, seed: u64) -> Vec<u32> {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut counts = vec![0u32; n];
        for _ in 0..draws {
            let r = d.sample_rank(&mut rng);
            assert!((1..=n).contains(&r), "rank {r} out of range");
            counts[r - 1] += 1;
        }
        counts
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let d = Zipf::new(5, 0.0);
        let counts = rank_counts(&d, 5, 100_000, 1);
        for &c in &counts {
            assert!((19_000..21_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn classic_zipf_ratios() {
        // s = 1 over 3 ranks: weights 1, 1/2, 1/3 -> probs 6/11, 3/11, 2/11.
        let d = Zipf::new(3, 1.0);
        let counts = rank_counts(&d, 3, 110_000, 2);
        assert!((counts[0] as f64 / 110_000.0 - 6.0 / 11.0).abs() < 0.01);
        assert!((counts[1] as f64 / 110_000.0 - 3.0 / 11.0).abs() < 0.01);
        assert!((counts[2] as f64 / 110_000.0 - 2.0 / 11.0).abs() < 0.01);
    }

    #[test]
    fn single_rank_always_one() {
        let d = Zipf::new(1, 2.0);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(d.sample_rank(&mut rng), 1);
        }
    }

    #[test]
    fn heavy_exponent_concentrates_on_rank_one() {
        let d = Zipf::new(100, 3.0);
        let counts = rank_counts(&d, 100, 50_000, 4);
        assert!(counts[0] as f64 / 50_000.0 > 0.8, "rank-1 share too small");
    }

    #[test]
    fn sample_matches_sample_rank() {
        let d = Zipf::new(10, 1.0);
        let mut r1 = SimRng::seed_from_u64(5);
        let mut r2 = SimRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r1), d.sample_rank(&mut r2) as f64);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn rejects_empty_rank_space() {
        Zipf::new(0, 1.0);
    }
}
