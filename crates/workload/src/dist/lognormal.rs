//! Log-normal distribution.
//!
//! `exp(N(μ, σ²))` — the standard model for parallel-job runtimes in the
//! workload-modeling literature (Lublin & Feitelson use a closely related
//! hyper-gamma; log-normal matches the same body shape with one fewer
//! parameter and an equally heavy right tail for our purposes).

use super::{standard_normal, Sample};
use simcore::SimRng;

/// Log-normal with location `mu` and scale `sigma` (of the underlying
/// normal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create from the underlying normal's parameters. `sigma` must be
    /// non-negative and finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "lognormal mu must be finite, got {mu}");
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "lognormal sigma must be finite and >= 0, got {sigma}"
        );
        LogNormal { mu, sigma }
    }

    /// Create from the distribution's own median and the multiplicative
    /// spread `sigma` — often the more intuitive parameterization:
    /// the median is `exp(mu)`.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(
            median > 0.0,
            "lognormal median must be positive, got {median}"
        );
        LogNormal::new(median.ln(), sigma)
    }

    /// Theoretical mean `exp(μ + σ²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// Theoretical median `exp(μ)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ecdf, moments};
    use super::*;

    #[test]
    fn mean_matches_theory() {
        let d = LogNormal::new(3.0, 0.8);
        let (mean, _) = moments(&d, 1, 400_000);
        assert!(
            (mean - d.mean()).abs() / d.mean() < 0.03,
            "mean {mean} vs {}",
            d.mean()
        );
    }

    #[test]
    fn median_splits_mass_in_half() {
        let d = LogNormal::from_median(100.0, 1.5);
        assert!((d.median() - 100.0).abs() < 1e-9);
        let p = ecdf(&d, 2, 200_000, 100.0);
        assert!((p - 0.5).abs() < 0.01, "cdf at median {p}");
    }

    #[test]
    fn zero_sigma_is_point_mass_at_median() {
        let d = LogNormal::from_median(7.0, 0.0);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!((d.sample(&mut rng) - 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn always_positive() {
        let d = LogNormal::new(-5.0, 3.0);
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn right_tail_is_heavy() {
        // For sigma = 2, mean/median = exp(2) ≈ 7.4: mean far above median.
        let d = LogNormal::from_median(1.0, 2.0);
        let (mean, _) = moments(&d, 5, 400_000);
        assert!(mean > 4.0, "mean {mean} not >> median 1.0");
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn rejects_negative_sigma() {
        LogNormal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "median must be positive")]
    fn rejects_non_positive_median() {
        LogNormal::from_median(0.0, 1.0);
    }
}
