//! Finite mixtures of arbitrary samplers.

use super::{Categorical, Sample};
use simcore::SimRng;

/// A finite mixture: pick component `i` with probability `wᵢ`, then draw
/// from it. The general tool for "80 % short jobs, 20 % long jobs" shapes.
pub struct Mixture {
    selector: Categorical,
    components: Vec<Box<dyn Sample + Send + Sync>>,
}

impl Mixture {
    /// Create from `(weight, sampler)` pairs. Weights follow
    /// [`Categorical`]'s rules (non-negative, positive sum).
    pub fn new(parts: Vec<(f64, Box<dyn Sample + Send + Sync>)>) -> Self {
        assert!(!parts.is_empty(), "mixture needs at least one component");
        let weights: Vec<f64> = parts.iter().map(|(w, _)| *w).collect();
        let components = parts.into_iter().map(|(_, c)| c).collect();
        Mixture {
            selector: Categorical::new(&weights),
            components,
        }
    }
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("components", &self.components.len())
            .finish_non_exhaustive()
    }
}

impl Sample for Mixture {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let idx = self.selector.sample_index(rng);
        self.components[idx].sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::moments;
    use super::super::{Exponential, Uniform};
    use super::*;

    #[test]
    fn mixture_mean_is_weighted_average() {
        let m = Mixture::new(vec![
            (
                0.25,
                Box::new(Uniform::new(0.0, 2.0)) as Box<dyn Sample + Send + Sync>,
            ),
            (0.75, Box::new(Exponential::with_mean(9.0))),
        ]);
        // E = 0.25*1 + 0.75*9 = 7.
        let (mean, _) = moments(&m, 1, 300_000);
        assert!((mean - 7.0).abs() / 7.0 < 0.03, "mean {mean}");
    }

    #[test]
    fn degenerate_single_component() {
        let m = Mixture::new(vec![(
            1.0,
            Box::new(Uniform::new(5.0, 5.0)) as Box<dyn Sample + Send + Sync>,
        )]);
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(m.sample(&mut rng), 5.0);
    }

    #[test]
    fn zero_weight_component_never_sampled() {
        let m = Mixture::new(vec![
            (
                0.0,
                Box::new(Uniform::new(100.0, 100.0)) as Box<dyn Sample + Send + Sync>,
            ),
            (1.0, Box::new(Uniform::new(1.0, 1.0))),
        ]);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert_eq!(m.sample(&mut rng), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn rejects_empty_mixture() {
        Mixture::new(vec![]);
    }

    #[test]
    fn debug_impl_reports_component_count() {
        let m = Mixture::new(vec![(
            1.0,
            Box::new(Uniform::new(0.0, 1.0)) as Box<dyn Sample + Send + Sync>,
        )]);
        assert!(format!("{m:?}").contains("components: 1"));
    }
}
