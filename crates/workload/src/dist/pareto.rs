//! Pareto and bounded Pareto distributions (inverse-CDF sampling).

use super::Sample;
use simcore::SimRng;

/// Pareto (type I) with minimum `x_m > 0` and tail index `α > 0`.
/// The heavier-tailed the smaller `α`; the mean is infinite for `α <= 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Create from scale (minimum value) and tail index.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(
            xm.is_finite() && xm > 0.0,
            "pareto scale must be positive, got {xm}"
        );
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "pareto alpha must be positive, got {alpha}"
        );
        Pareto { xm, alpha }
    }

    /// Theoretical mean (infinite for `α <= 1`).
    pub fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.xm / (self.alpha - 1.0)
        }
    }
}

impl Sample for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.xm / rng.f64_open().powf(1.0 / self.alpha)
    }
}

/// Pareto truncated to `[lo, hi]` — used where a genuinely unbounded tail
/// would produce nonsense jobs (nothing runs for a millennium).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Create from bounds `0 < lo < hi` and tail index `α > 0`.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(
            lo.is_finite() && lo > 0.0,
            "bounded-pareto lo must be positive, got {lo}"
        );
        assert!(
            hi.is_finite() && hi > lo,
            "bounded-pareto hi must exceed lo, got [{lo}, {hi}]"
        );
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "bounded-pareto alpha must be positive"
        );
        BoundedPareto { lo, hi, alpha }
    }
}

impl Sample for BoundedPareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF of the truncated distribution.
        let u = rng.f64();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        let x = -(u * ha - u * la - ha) / (ha * la);
        x.powf(-1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ecdf, moments};
    use super::*;

    #[test]
    fn pareto_respects_minimum() {
        let d = Pareto::new(5.0, 2.0);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 5.0);
        }
    }

    #[test]
    fn pareto_mean_matches_theory() {
        let d = Pareto::new(1.0, 3.0);
        assert!((d.mean() - 1.5).abs() < 1e-12);
        let (mean, _) = moments(&d, 2, 400_000);
        assert!((mean - 1.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn pareto_infinite_mean_flagged() {
        assert!(Pareto::new(1.0, 1.0).mean().is_infinite());
        assert!(Pareto::new(1.0, 0.5).mean().is_infinite());
    }

    #[test]
    fn pareto_cdf_matches_closed_form() {
        // F(x) = 1 - (xm/x)^alpha; at x = 2*xm, alpha = 2: 1 - 0.25 = 0.75.
        let d = Pareto::new(1.0, 2.0);
        let p = ecdf(&d, 3, 200_000, 2.0);
        assert!((p - 0.75).abs() < 0.01, "cdf {p}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = BoundedPareto::new(2.0, 100.0, 1.1);
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..=100.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn bounded_pareto_mass_concentrates_at_low_end() {
        // With alpha = 1.5, well over half the mass sits below 2*lo.
        let d = BoundedPareto::new(1.0, 1000.0, 1.5);
        let p = ecdf(&d, 5, 200_000, 2.0);
        assert!(p > 0.6, "cdf at 2*lo = {p}");
    }

    #[test]
    #[should_panic(expected = "hi must exceed lo")]
    fn bounded_pareto_rejects_bad_bounds() {
        BoundedPareto::new(10.0, 10.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn pareto_rejects_bad_alpha() {
        Pareto::new(1.0, 0.0);
    }
}
