//! Exponential and hyper-exponential distributions.
//!
//! The exponential models memoryless arrival gaps; the hyper-exponential
//! (a probabilistic mixture of exponentials) is the classic model for
//! high-variance job runtimes in batch workloads — most jobs are short, a
//! heavy minority are very long.

use super::Sample;
use simcore::SimRng;

/// Exponential with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create from rate `λ > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive, got {rate}"
        );
        Exponential { rate }
    }

    /// Create from the mean `1/λ`.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        Exponential { rate: 1.0 / mean }
    }

    /// Theoretical mean.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -rng.f64_open().ln() / self.rate
    }
}

/// A k-phase hyper-exponential: with probability `pᵢ`, draw Exp(λᵢ).
///
/// Squared coefficient of variation exceeds 1 whenever the phase means
/// differ, which is what makes it fit batch-job runtimes.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperExponential {
    /// Cumulative phase-selection probabilities (last is 1.0).
    cumulative: Vec<f64>,
    phases: Vec<Exponential>,
}

impl HyperExponential {
    /// Create from `(probability, mean)` pairs. Probabilities must be
    /// positive and sum to 1 (±1e-9).
    pub fn new(phases: &[(f64, f64)]) -> Self {
        assert!(
            !phases.is_empty(),
            "hyper-exponential needs at least one phase"
        );
        let total: f64 = phases.iter().map(|&(p, _)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "phase probabilities must sum to 1, got {total}"
        );
        let mut cumulative = Vec::with_capacity(phases.len());
        let mut acc = 0.0;
        for &(p, _mean) in phases {
            assert!(p > 0.0, "phase probability must be positive, got {p}");
            acc += p;
            cumulative.push(acc);
        }
        *cumulative.last_mut().expect("non-empty") = 1.0; // kill rounding residue
        let phases = phases
            .iter()
            .map(|&(_, mean)| Exponential::with_mean(mean))
            .collect();
        HyperExponential { cumulative, phases }
    }

    /// Theoretical mean `Σ pᵢ/λᵢ`.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut m = 0.0;
        for (c, ph) in self.cumulative.iter().zip(&self.phases) {
            m += (c - prev) * ph.mean();
            prev = *c;
        }
        m
    }
}

impl Sample for HyperExponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.f64();
        let idx = self
            .cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.phases.len() - 1);
        self.phases[idx].sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ecdf, moments};
    use super::*;

    #[test]
    fn exponential_mean_matches_theory() {
        let d = Exponential::with_mean(42.0);
        let (mean, var) = moments(&d, 1, 200_000);
        assert!((mean - 42.0).abs() / 42.0 < 0.02, "mean {mean}");
        // Var = mean^2
        assert!(
            (var - 42.0 * 42.0).abs() / (42.0 * 42.0) < 0.05,
            "var {var}"
        );
    }

    #[test]
    fn exponential_cdf_at_mean() {
        // P(X <= mean) = 1 - e^-1 ≈ 0.6321.
        let d = Exponential::with_mean(10.0);
        let p = ecdf(&d, 2, 100_000, 10.0);
        assert!((p - 0.6321).abs() < 0.01, "cdf {p}");
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(0.001);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn rate_and_mean_constructors_agree() {
        assert_eq!(
            Exponential::new(0.5).mean(),
            Exponential::with_mean(2.0).mean()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        Exponential::new(0.0);
    }

    #[test]
    fn hyperexp_mean_matches_theory() {
        let d = HyperExponential::new(&[(0.7, 10.0), (0.3, 1000.0)]);
        let expected = 0.7 * 10.0 + 0.3 * 1000.0;
        assert!((d.mean() - expected).abs() < 1e-9);
        let (mean, _) = moments(&d, 4, 400_000);
        assert!(
            (mean - expected).abs() / expected < 0.03,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn hyperexp_has_high_variance() {
        // CV^2 > 1 distinguishes it from a plain exponential.
        let d = HyperExponential::new(&[(0.9, 10.0), (0.1, 1000.0)]);
        let (mean, var) = moments(&d, 5, 400_000);
        let cv2 = var / (mean * mean);
        assert!(cv2 > 2.0, "cv^2 {cv2} not heavy-tailed");
    }

    #[test]
    fn hyperexp_single_phase_degenerates_to_exponential() {
        let h = HyperExponential::new(&[(1.0, 25.0)]);
        let (mean, _) = moments(&h, 6, 100_000);
        assert!((mean - 25.0).abs() / 25.0 < 0.03);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_unnormalized_probabilities() {
        HyperExponential::new(&[(0.5, 1.0), (0.4, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn rejects_empty_phase_list() {
        HyperExponential::new(&[]);
    }
}
