//! One-sample Kolmogorov–Smirnov goodness-of-fit testing.
//!
//! The distribution toolkit's unit tests check moments; moments can agree
//! while shapes differ. The KS statistic — the supremum gap between the
//! empirical CDF and a reference CDF — catches shape errors, and is used
//! by the samplers' own test suites and available to users validating a
//! synthetic trace against a real log.

use super::Sample;
use simcore::SimRng;

/// The one-sample KS statistic `D_n = sup |F_n(x) − F(x)|` of `samples`
/// against a reference CDF. `samples` need not be sorted.
pub fn ks_statistic(samples: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    assert!(!samples.is_empty(), "KS needs at least one sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        assert!(
            (0.0..=1.0).contains(&f),
            "reference CDF out of range at {x}: {f}"
        );
        // Compare against the ECDF just before and just after the step.
        let lo = i as f64 / n;
        let hi = (i as f64 + 1.0) / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Critical value of the KS statistic at significance `alpha` for sample
/// size `n` (asymptotic formula `c(α)·√(1/n)`, good for n ≳ 35).
pub fn ks_critical(n: usize, alpha: f64) -> f64 {
    assert!(n > 0, "KS needs samples");
    let c = match alpha {
        a if (a - 0.10).abs() < 1e-9 => 1.224,
        a if (a - 0.05).abs() < 1e-9 => 1.358,
        a if (a - 0.01).abs() < 1e-9 => 1.628,
        a if (a - 0.001).abs() < 1e-9 => 1.949,
        _ => panic!("unsupported alpha {alpha}; use 0.10, 0.05, 0.01 or 0.001"),
    };
    c / (n as f64).sqrt()
}

/// Draw `n` samples from `dist` and test against `cdf` at significance
/// `alpha`. Returns `(statistic, critical, passes)`.
pub fn ks_test(
    dist: &impl Sample,
    cdf: impl Fn(f64) -> f64,
    n: usize,
    seed: u64,
    alpha: f64,
) -> (f64, f64, bool) {
    let mut rng = SimRng::seed_from_u64(seed);
    let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
    let d = ks_statistic(&samples, cdf);
    let crit = ks_critical(n, alpha);
    (d, crit, d < crit)
}

#[cfg(test)]
mod tests {
    use super::super::{Exponential, LogNormal, Uniform, Weibull};
    use super::*;

    fn erf(x: f64) -> f64 {
        // Abramowitz–Stegun 7.1.26, |error| < 1.5e-7: plenty for tests.
        let sign = if x < 0.0 { -1.0 } else { 1.0 };
        let x = x.abs();
        let t = 1.0 / (1.0 + 0.3275911 * x);
        let y = 1.0
            - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
                + 0.254829592)
                * t
                * (-x * x).exp();
        sign * y
    }

    fn normal_cdf(x: f64) -> f64 {
        0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
    }

    #[test]
    fn exponential_passes_against_its_own_cdf() {
        let d = Exponential::with_mean(50.0);
        let (stat, crit, pass) = ks_test(&d, |x| 1.0 - (-x / 50.0).exp().min(1.0), 5_000, 1, 0.01);
        assert!(pass, "KS {stat} >= critical {crit}");
    }

    #[test]
    fn uniform_passes_against_linear_cdf() {
        let d = Uniform::new(2.0, 8.0);
        let cdf = |x: f64| ((x - 2.0) / 6.0).clamp(0.0, 1.0);
        let (stat, crit, pass) = ks_test(&d, cdf, 5_000, 2, 0.01);
        assert!(pass, "KS {stat} >= critical {crit}");
    }

    #[test]
    fn weibull_passes_against_closed_form() {
        let d = Weibull::new(0.7, 30.0);
        let cdf = |x: f64| {
            if x <= 0.0 {
                0.0
            } else {
                1.0 - (-(x / 30.0).powf(0.7)).exp()
            }
        };
        let (stat, crit, pass) = ks_test(&d, cdf, 5_000, 3, 0.01);
        assert!(pass, "KS {stat} >= critical {crit}");
    }

    #[test]
    fn lognormal_passes_against_normal_cdf_of_log() {
        let d = LogNormal::new(2.0, 0.75);
        let cdf = |x: f64| {
            if x <= 0.0 {
                0.0
            } else {
                normal_cdf((x.ln() - 2.0) / 0.75)
            }
        };
        let (stat, crit, pass) = ks_test(&d, cdf, 5_000, 4, 0.01);
        assert!(pass, "KS {stat} >= critical {crit}");
    }

    #[test]
    fn wrong_distribution_fails() {
        // Exponential samples against a uniform CDF: must reject loudly.
        let d = Exponential::with_mean(50.0);
        let cdf = |x: f64| (x / 100.0).clamp(0.0, 1.0);
        let (stat, crit, pass) = ks_test(&d, cdf, 5_000, 5, 0.01);
        assert!(!pass, "KS {stat} < critical {crit} for a wrong model");
    }

    #[test]
    fn statistic_of_perfect_fit_is_small() {
        // ECDF of 0..n against the uniform CDF on [0, n).
        let samples: Vec<f64> = (0..1000).map(|i| i as f64 + 0.5).collect();
        let d = ks_statistic(&samples, |x| (x / 1000.0).clamp(0.0, 1.0));
        assert!(d < 0.002, "D {d}");
    }

    #[test]
    fn critical_values_scale_with_n() {
        assert!(ks_critical(100, 0.05) > ks_critical(10_000, 0.05));
        assert!((ks_critical(100, 0.05) - 0.1358).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "unsupported alpha")]
    fn rejects_unknown_alpha() {
        ks_critical(100, 0.2);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_empty_samples() {
        ks_statistic(&[], |_| 0.5);
    }
}
