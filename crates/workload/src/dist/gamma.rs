//! Gamma distribution via the Marsaglia–Tsang (2000) squeeze method.

use super::{standard_normal, Sample};
use simcore::SimRng;

/// Gamma with shape `k > 0` and scale `θ > 0` (mean `kθ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Create from shape and scale.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0,
            "gamma shape must be positive, got {shape}"
        );
        assert!(
            scale.is_finite() && scale > 0.0,
            "gamma scale must be positive, got {scale}"
        );
        Gamma { shape, scale }
    }

    /// Theoretical mean `kθ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Theoretical variance `kθ²`.
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// Draw from Gamma(shape, 1) for shape >= 1 (Marsaglia–Tsang).
    fn sample_standard(shape: f64, rng: &mut SimRng) -> f64 {
        debug_assert!(shape >= 1.0);
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u = rng.f64_open();
            // Squeeze check, then the full acceptance test.
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Sample for Gamma {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        if self.shape >= 1.0 {
            self.scale * Self::sample_standard(self.shape, rng)
        } else {
            // Boost: Gamma(k) = Gamma(k+1) · U^(1/k).
            let g = Self::sample_standard(self.shape + 1.0, rng);
            self.scale * g * rng.f64_open().powf(1.0 / self.shape)
        }
    }
}

/// A two-component gamma mixture ("hyper-gamma", Lublin & Feitelson 2003):
/// with probability `p` draw from the first gamma, else the second. The
/// canonical fit for parallel-job runtimes, where the first component
/// captures the short-job body and the second the long-job bulge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperGamma {
    first: Gamma,
    second: Gamma,
    p: f64,
}

impl HyperGamma {
    /// Create from two gammas and the first-component probability.
    pub fn new(first: Gamma, second: Gamma, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "mixture probability must be in [0,1], got {p}"
        );
        HyperGamma { first, second, p }
    }

    /// Theoretical mean `p·E[G₁] + (1−p)·E[G₂]`.
    pub fn mean(&self) -> f64 {
        self.p * self.first.mean() + (1.0 - self.p) * self.second.mean()
    }

    /// Draw with an overridden first-component probability — the hook the
    /// Lublin model uses to correlate runtime with job size (larger jobs
    /// lean toward the long component).
    pub fn sample_with_p(&self, p: f64, rng: &mut SimRng) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if rng.chance(p) {
            self.first.sample(rng)
        } else {
            self.second.sample(rng)
        }
    }
}

impl Sample for HyperGamma {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_with_p(self.p, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::moments;
    use super::*;

    #[test]
    fn mean_and_variance_shape_above_one() {
        let d = Gamma::new(4.0, 5.0);
        let (mean, var) = moments(&d, 1, 300_000);
        assert!((mean - 20.0).abs() / 20.0 < 0.02, "mean {mean}");
        assert!((var - 100.0).abs() / 100.0 < 0.05, "var {var}");
    }

    #[test]
    fn mean_and_variance_shape_below_one() {
        let d = Gamma::new(0.5, 2.0);
        let (mean, var) = moments(&d, 2, 300_000);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!((var - 2.0).abs() / 2.0 < 0.05, "var {var}");
    }

    #[test]
    fn shape_one_is_exponential() {
        let d = Gamma::new(1.0, 7.0);
        let (mean, var) = moments(&d, 3, 300_000);
        assert!((mean - 7.0).abs() / 7.0 < 0.02, "mean {mean}");
        assert!((var - 49.0).abs() / 49.0 < 0.05, "var {var}");
    }

    #[test]
    fn always_positive() {
        for &k in &[0.3, 1.0, 10.0] {
            let d = Gamma::new(k, 1.0);
            let mut rng = SimRng::seed_from_u64(4);
            for _ in 0..5_000 {
                assert!(d.sample(&mut rng) > 0.0, "shape {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn rejects_bad_shape() {
        Gamma::new(-1.0, 1.0);
    }

    #[test]
    fn hypergamma_mean_matches_theory() {
        let h = HyperGamma::new(Gamma::new(2.0, 5.0), Gamma::new(4.0, 100.0), 0.7);
        let expected = 0.7 * 10.0 + 0.3 * 400.0;
        assert!((h.mean() - expected).abs() < 1e-9);
        let (mean, _) = moments(&h, 10, 300_000);
        assert!((mean - expected).abs() / expected < 0.03, "mean {mean}");
    }

    #[test]
    fn hypergamma_p_extremes_select_components() {
        let h = HyperGamma::new(Gamma::new(2.0, 1.0), Gamma::new(2.0, 1000.0), 0.5);
        let mut rng = SimRng::seed_from_u64(11);
        // p = 1: all draws from the small component.
        for _ in 0..200 {
            assert!(h.sample_with_p(1.0, &mut rng) < 100.0);
        }
        // p = 0: all draws from the big component (its mean is 2000).
        let mean0: f64 = (0..500)
            .map(|_| h.sample_with_p(0.0, &mut rng))
            .sum::<f64>()
            / 500.0;
        assert!(mean0 > 500.0, "mean {mean0}");
    }

    #[test]
    fn hypergamma_sample_with_p_clamps() {
        let h = HyperGamma::new(Gamma::new(1.0, 1.0), Gamma::new(1.0, 2.0), 0.5);
        let mut rng = SimRng::seed_from_u64(12);
        // Out-of-range p must not panic.
        let _ = h.sample_with_p(-3.0, &mut rng);
        let _ = h.sample_with_p(7.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "mixture probability")]
    fn hypergamma_rejects_bad_p() {
        HyperGamma::new(Gamma::new(1.0, 1.0), Gamma::new(1.0, 1.0), 1.5);
    }
}
