//! Weibull distribution (inverse-CDF sampling).

use super::Sample;
use simcore::SimRng;

/// Weibull with shape `k` and scale `λ`. `k < 1` gives a heavier-than-
/// exponential tail (common for inter-arrival gaps in bursty workloads),
/// `k = 1` is exponential.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Create from shape `k > 0` and scale `λ > 0`.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0,
            "weibull shape must be positive, got {shape}"
        );
        assert!(
            scale.is_finite() && scale > 0.0,
            "weibull scale must be positive, got {scale}"
        );
        Weibull { shape, scale }
    }

    /// Theoretical mean `λ·Γ(1 + 1/k)`.
    pub fn mean(&self) -> f64 {
        self.scale * gamma_fn(1.0 + 1.0 / self.shape)
    }
}

impl Sample for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF: λ·(-ln U)^(1/k).
        self.scale * (-rng.f64_open().ln()).powf(1.0 / self.shape)
    }
}

/// Lanczos approximation of Γ(x) for x > 0 (plenty accurate for moments).
pub(crate) fn gamma_fn(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const G: f64 = 7.0;
    // Published table values; a few digits exceed f64 precision.
    #[allow(clippy::excessive_precision)]
    const C: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ecdf, moments};
    use super::*;

    #[test]
    fn gamma_fn_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-7);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
        assert!((gamma_fn(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn shape_one_is_exponential() {
        let d = Weibull::new(1.0, 30.0);
        let (mean, var) = moments(&d, 1, 200_000);
        assert!((mean - 30.0).abs() / 30.0 < 0.02, "mean {mean}");
        assert!((var - 900.0).abs() / 900.0 < 0.05, "var {var}");
    }

    #[test]
    fn mean_matches_theory_for_fractional_shape() {
        let d = Weibull::new(0.5, 10.0);
        // mean = 10 * Γ(3) = 20.
        assert!((d.mean() - 20.0).abs() < 1e-6);
        let (mean, _) = moments(&d, 2, 400_000);
        assert!((mean - 20.0).abs() / 20.0 < 0.05, "mean {mean}");
    }

    #[test]
    fn cdf_at_scale_is_one_minus_inv_e() {
        // F(λ) = 1 - e^-1 for every shape.
        for &k in &[0.5, 1.0, 2.0] {
            let d = Weibull::new(k, 42.0);
            let p = ecdf(&d, 3, 100_000, 42.0);
            assert!((p - 0.6321).abs() < 0.01, "k={k}: cdf {p}");
        }
    }

    #[test]
    fn always_positive() {
        let d = Weibull::new(0.3, 1.0);
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn rejects_bad_shape() {
        Weibull::new(0.0, 1.0);
    }
}
