//! Discrete distributions: weighted categorical (Walker alias method) and
//! empirical resampling.

use super::Sample;
use simcore::SimRng;

/// A weighted categorical distribution over `{0, …, n-1}` using Walker's
/// alias method: O(n) setup, O(1) per draw.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl Categorical {
    /// Create from non-negative weights (at least one must be positive).
    /// Weights need not be normalized.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "categorical needs at least one weight");
        let total: f64 = weights.iter().copied().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "categorical weights must be finite with positive sum, got {total}"
        );
        for &w in weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "negative or non-finite weight {w}"
            );
        }
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = (0..n).filter(|&i| prob[i] < 1.0).collect();
        let mut large: Vec<usize> = (0..n).filter(|&i| prob[i] >= 1.0).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically 1.0.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Categorical { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when there are no categories (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw a category index.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        let i = rng.below(self.prob.len() as u64) as usize;
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

impl Sample for Categorical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_index(rng) as f64
    }
}

/// Resamples uniformly from a fixed set of observed values — the
/// nonparametric bootstrap used to mimic a real trace's marginal exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    values: Vec<f64>,
}

impl Empirical {
    /// Create from observed values (must be non-empty and finite).
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            !values.is_empty(),
            "empirical distribution needs observations"
        );
        assert!(
            values.iter().all(|v| v.is_finite()),
            "non-finite observation"
        );
        Empirical { values }
    }
}

impl Sample for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        *rng.choose(&self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_method_matches_weights() {
        let d = Categorical::new(&[1.0, 2.0, 3.0, 4.0]);
        let mut rng = SimRng::seed_from_u64(1);
        let mut counts = [0u32; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[d.sample_index(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = (i + 1) as f64 / 10.0;
            let got = c as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.005,
                "cat {i}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let d = Categorical::new(&[0.0, 1.0, 0.0]);
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_eq!(d.sample_index(&mut rng), 1);
        }
    }

    #[test]
    fn unnormalized_weights_are_fine() {
        let a = Categorical::new(&[2.0, 6.0]);
        let mut rng = SimRng::seed_from_u64(3);
        let ones = (0..100_000)
            .filter(|_| a.sample_index(&mut rng) == 1)
            .count();
        assert!((ones as f64 / 100_000.0 - 0.75).abs() < 0.01);
    }

    #[test]
    fn single_category() {
        let d = Categorical::new(&[42.0]);
        let mut rng = SimRng::seed_from_u64(4);
        assert_eq!(d.sample_index(&mut rng), 0);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn rejects_all_zero_weights() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "negative or non-finite")]
    fn rejects_negative_weight() {
        Categorical::new(&[1.0, -0.5]);
    }

    #[test]
    fn empirical_resamples_only_observations() {
        let d = Empirical::new(vec![1.5, 2.5, 3.5]);
        let mut rng = SimRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            let x = d.sample(&mut rng);
            let slot = [1.5, 2.5, 3.5]
                .iter()
                .position(|&v| v == x)
                .unwrap_or_else(|| panic!("unexpected value {x}"));
            seen[slot] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    #[should_panic(expected = "needs observations")]
    fn empirical_rejects_empty() {
        Empirical::new(vec![]);
    }
}
