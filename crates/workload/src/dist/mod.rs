//! Hand-built random-variate samplers for workload modeling.
//!
//! The workload models need heavy-tailed runtime distributions, bursty
//! arrival gaps, and power-of-two-biased width distributions. We implement
//! the samplers ourselves (rather than pulling `rand_distr`) so that
//! generated traces stay bit-identical across dependency upgrades and every
//! algorithm is auditable in-tree.
//!
//! All samplers implement [`Sample`]; discrete ones additionally expose
//! integer draws.

mod discrete;
mod exponential;
mod gamma;
pub mod ks;
mod lognormal;
mod mixture;
mod pareto;
mod twostage;
mod uniform;
mod weibull;
mod zipf;

pub use discrete::{Categorical, Empirical};
pub use exponential::{Exponential, HyperExponential};
pub use gamma::{Gamma, HyperGamma};
pub use ks::{ks_critical, ks_statistic, ks_test};
pub use lognormal::LogNormal;
pub use mixture::Mixture;
pub use pareto::{BoundedPareto, Pareto};
pub use twostage::TwoStageUniform;
pub use uniform::Uniform;
pub use weibull::Weibull;
pub use zipf::Zipf;

use simcore::SimRng;

/// A real-valued random variate.
pub trait Sample {
    /// Draw one value.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// Draw a value, clamp it to `[lo, hi]`, and round to the nearest
    /// integer. The universal adapter from continuous models to integral
    /// job attributes (seconds, processors).
    fn sample_clamped_int(&self, rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let x = self.sample(rng);
        if !x.is_finite() || x <= lo as f64 {
            lo
        } else if x >= hi as f64 {
            hi
        } else {
            (x.round() as u64).clamp(lo, hi)
        }
    }
}

impl<S: Sample + ?Sized> Sample for Box<S> {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (**self).sample(rng)
    }
}

impl<S: Sample + ?Sized> Sample for &S {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (**self).sample(rng)
    }
}

/// Draw from the standard normal distribution N(0, 1) via Box–Muller.
///
/// Stateless (the second variate of the pair is discarded) so that samplers
/// built on it need no interior mutability and streams stay splittable.
pub fn standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = rng.f64_open();
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Sample `n` values and return (mean, variance).
    pub fn moments(dist: &impl Sample, seed: u64, n: usize) -> (f64, f64) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for i in 0..n {
            let x = dist.sample(&mut rng);
            let delta = x - mean;
            mean += delta / (i + 1) as f64;
            m2 += delta * (x - mean);
        }
        (mean, m2 / (n - 1) as f64)
    }

    /// Empirical CDF at `x`.
    pub fn ecdf(dist: &impl Sample, seed: u64, n: usize, x: f64) -> f64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let hits = (0..n).filter(|_| dist.sample(&mut rng) <= x).count();
        hits as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_util::moments;

    struct Constant(f64);
    impl Sample for Constant {
        fn sample(&self, _: &mut SimRng) -> f64 {
            self.0
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 200_000;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for i in 0..n {
            let x = standard_normal(&mut rng);
            let d = x - mean;
            mean += d / (i + 1) as f64;
            m2 += d * (x - mean);
        }
        let var = m2 / (n - 1) as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn standard_normal_symmetry() {
        let mut rng = SimRng::seed_from_u64(2);
        let n = 100_000;
        let pos = (0..n).filter(|_| standard_normal(&mut rng) > 0.0).count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }

    #[test]
    fn sample_clamped_int_clamps_and_rounds() {
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(Constant(5.4).sample_clamped_int(&mut rng, 0, 10), 5);
        assert_eq!(Constant(5.6).sample_clamped_int(&mut rng, 0, 10), 6);
        assert_eq!(Constant(-3.0).sample_clamped_int(&mut rng, 2, 10), 2);
        assert_eq!(Constant(1e300).sample_clamped_int(&mut rng, 2, 10), 10);
        assert_eq!(Constant(f64::NAN).sample_clamped_int(&mut rng, 2, 10), 2);
        assert_eq!(
            Constant(f64::INFINITY).sample_clamped_int(&mut rng, 2, 10),
            2
        );
    }

    #[test]
    fn boxed_and_borrowed_samplers_delegate() {
        let boxed: Box<dyn Sample> = Box::new(Constant(7.0));
        let mut rng = SimRng::seed_from_u64(4);
        assert_eq!(boxed.sample(&mut rng), 7.0);
        let c = Constant(8.0);
        let by_ref: &dyn Sample = &c;
        assert_eq!(by_ref.sample(&mut rng), 8.0);
    }

    #[test]
    fn moments_helper_on_constant() {
        let (mean, var) = moments(&Constant(3.0), 5, 1000);
        assert_eq!(mean, 3.0);
        assert_eq!(var, 0.0);
    }
}
