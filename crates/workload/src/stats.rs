//! Trace characterization statistics.
//!
//! Before trusting any simulation result, characterize the input: the
//! whole point of the paper's Section 3. [`TraceStats`] computes the
//! marginal summaries (runtime, width, inter-arrival), the power-of-two
//! share, the runtime/width correlation, and the category mix, and renders
//! them as a report table.

use crate::category::{Category, CategoryCriteria};
use crate::trace::Trace;

/// Five-number-ish summary of a marginal: min / median / mean / p90 / max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginalSummary {
    /// Smallest observation.
    pub min: f64,
    /// 50th percentile.
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Largest observation.
    pub max: f64,
}

impl MarginalSummary {
    fn from_values(mut values: Vec<f64>) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let q = |p: f64| -> f64 {
            let pos = p * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            values[lo] * (1.0 - frac) + values[hi] * frac
        };
        Some(MarginalSummary {
            min: values[0],
            median: q(0.5),
            mean: values.iter().sum::<f64>() / n as f64,
            p90: q(0.9),
            max: values[n - 1],
        })
    }
}

/// Full characterization of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Machine size.
    pub nodes: u32,
    /// Offered load ρ.
    pub offered_load: f64,
    /// Runtime marginal (seconds).
    pub runtime: Option<MarginalSummary>,
    /// Width marginal (processors).
    pub width: Option<MarginalSummary>,
    /// Inter-arrival gap marginal (seconds).
    pub interarrival: Option<MarginalSummary>,
    /// Share of jobs whose width is a power of two.
    pub pow2_share: f64,
    /// Share of serial (width 1) jobs.
    pub serial_share: f64,
    /// Pearson correlation between log-runtime and log-width.
    pub runtime_width_correlation: f64,
    /// SN/SW/LN/LW mix.
    pub category_mix: [f64; 4],
    /// Mean overestimation factor `estimate / runtime`.
    pub mean_overestimation: f64,
}

/// Hour-of-day × day-of-week arrival counts (7 rows of 24), for weekly
/// heatmaps of a trace's submission pattern.
pub fn arrival_heatmap(trace: &Trace) -> [[u32; 24]; 7] {
    let mut grid = [[0u32; 24]; 7];
    for j in trace.jobs() {
        let day = ((j.arrival.as_secs() / 86_400) % 7) as usize;
        let hour = ((j.arrival.as_secs() / 3_600) % 24) as usize;
        grid[day][hour] += 1;
    }
    grid
}

/// Pearson correlation of two equal-length samples (0 if degenerate).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs paired samples");
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

impl TraceStats {
    /// Characterize a trace with the default category criteria.
    pub fn of(trace: &Trace) -> Self {
        let criteria = CategoryCriteria::default();
        let runtimes: Vec<f64> = trace
            .jobs()
            .iter()
            .map(|j| j.runtime.as_secs_f64())
            .collect();
        let widths: Vec<f64> = trace.jobs().iter().map(|j| j.width as f64).collect();
        let gaps: Vec<f64> = trace
            .jobs()
            .windows(2)
            .map(|w| w[1].arrival.since(w[0].arrival).as_secs_f64())
            .collect();
        let n = trace.len().max(1) as f64;
        let pow2 = trace
            .jobs()
            .iter()
            .filter(|j| j.width.is_power_of_two())
            .count() as f64
            / n;
        let serial = trace.jobs().iter().filter(|j| j.width == 1).count() as f64 / n;
        let log_rt: Vec<f64> = runtimes.iter().map(|&r| r.max(1.0).ln()).collect();
        let log_w: Vec<f64> = widths.iter().map(|&w| w.max(1.0).ln()).collect();
        let over = if trace.is_empty() {
            1.0
        } else {
            trace.jobs().iter().map(|j| j.overestimation()).sum::<f64>() / n
        };
        TraceStats {
            jobs: trace.len(),
            nodes: trace.nodes(),
            offered_load: trace.offered_load(),
            runtime: MarginalSummary::from_values(runtimes),
            width: MarginalSummary::from_values(widths),
            interarrival: MarginalSummary::from_values(gaps),
            pow2_share: pow2,
            serial_share: serial,
            runtime_width_correlation: pearson(&log_rt, &log_w),
            category_mix: criteria.distribution(trace),
            mean_overestimation: over,
        }
    }

    /// Render as a human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} jobs on {} processors, offered load {:.3}\n",
            self.jobs, self.nodes, self.offered_load
        ));
        let marginal = |name: &str, m: &Option<MarginalSummary>| -> String {
            match m {
                Some(m) => format!(
                    "{name:<14} min {:>10.0}  median {:>10.0}  mean {:>10.0}  p90 {:>10.0}  max {:>10.0}\n",
                    m.min, m.median, m.mean, m.p90, m.max
                ),
                None => format!("{name:<14} (empty)\n"),
            }
        };
        out.push_str(&marginal("runtime (s)", &self.runtime));
        out.push_str(&marginal("width (procs)", &self.width));
        out.push_str(&marginal("gap (s)", &self.interarrival));
        out.push_str(&format!(
            "power-of-two widths {:.1}%, serial jobs {:.1}%, corr(log rt, log w) {:+.2}\n",
            self.pow2_share * 100.0,
            self.serial_share * 100.0,
            self.runtime_width_correlation
        ));
        out.push_str(&format!(
            "categories: SN {:.1}%  SW {:.1}%  LN {:.1}%  LW {:.1}%  |  mean overestimation {:.2}x\n",
            self.category_mix[Category::SN as usize] * 100.0,
            self.category_mix[Category::SW as usize] * 100.0,
            self.category_mix[Category::LN as usize] * 100.0,
            self.category_mix[Category::LW as usize] * 100.0,
            self.mean_overestimation
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use simcore::{JobId, SimSpan, SimTime};

    fn job(arrival: u64, runtime: u64, estimate: u64, width: u32) -> Job {
        Job {
            id: JobId(0),
            arrival: SimTime::new(arrival),
            runtime: SimSpan::new(runtime),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    #[test]
    fn marginals_on_known_trace() {
        let t = Trace::new(
            "t",
            16,
            vec![
                job(0, 100, 100, 1),
                job(10, 200, 200, 2),
                job(30, 300, 300, 4),
            ],
        )
        .unwrap();
        let s = TraceStats::of(&t);
        assert_eq!(s.jobs, 3);
        let rt = s.runtime.unwrap();
        assert_eq!(rt.min, 100.0);
        assert_eq!(rt.median, 200.0);
        assert_eq!(rt.max, 300.0);
        assert!((rt.mean - 200.0).abs() < 1e-12);
        let gaps = s.interarrival.unwrap();
        assert_eq!(gaps.min, 10.0);
        assert_eq!(gaps.max, 20.0);
        assert_eq!(s.pow2_share, 1.0);
        assert!((s.serial_share - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_detects_monotone_relation() {
        // Runtime grows with width: strong positive correlation.
        let jobs: Vec<Job> = (1..=32)
            .map(|w| job(w as u64, 100 * w as u64, 100 * w as u64, w))
            .collect();
        let t = Trace::new("t", 32, jobs).unwrap();
        let s = TraceStats::of(&t);
        assert!(
            s.runtime_width_correlation > 0.99,
            "corr {}",
            s.runtime_width_correlation
        );
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0); // degenerate x
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "paired samples")]
    fn pearson_rejects_mismatched_lengths() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn overestimation_mean() {
        let t = Trace::new("t", 8, vec![job(0, 100, 200, 1), job(1, 100, 400, 1)]).unwrap();
        let s = TraceStats::of(&t);
        assert!((s.mean_overestimation - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_handled() {
        let t = Trace::new("t", 8, vec![]).unwrap();
        let s = TraceStats::of(&t);
        assert_eq!(s.jobs, 0);
        assert!(s.runtime.is_none());
        assert!(s.render().contains("(empty)"));
    }

    #[test]
    fn arrival_heatmap_buckets_correctly() {
        // One job on day 0 hour 0, one on day 1 hour 3, two on day 6 hour 23.
        let mk = |secs: u64| job(secs, 10, 10, 1);
        let t = Trace::new(
            "t",
            8,
            vec![
                mk(0),
                mk(86_400 + 3 * 3_600),
                mk(6 * 86_400 + 23 * 3_600),
                mk(6 * 86_400 + 23 * 3_600 + 59),
            ],
        )
        .unwrap();
        let g = arrival_heatmap(&t);
        assert_eq!(g[0][0], 1);
        assert_eq!(g[1][3], 1);
        assert_eq!(g[6][23], 2);
        let total: u32 = g.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn render_contains_key_lines() {
        let t = Trace::new("t", 8, vec![job(0, 100, 100, 2)]).unwrap();
        let text = TraceStats::of(&t).render();
        assert!(text.contains("1 jobs on 8 processors"));
        assert!(text.contains("categories:"));
        assert!(text.contains("power-of-two"));
    }
}
