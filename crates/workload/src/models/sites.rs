//! Additional machine-scale presets.
//!
//! The paper evaluates CTC and SDSC; studies in its bibliography span a
//! wider range of machine scales, and scale interacts with backfilling
//! (narrow/wide is relative to the machine). These presets give users
//! ready-made models at characteristic scales of the era's archive logs.
//!
//! **Calibration status**: unlike [`mod@super::ctc`]/[`mod@super::sdsc`] (whose
//! category mixes are pinned to the paper's Tables 2–3), these mixes are
//! *illustrative*, chosen to reflect each site's qualitative character as
//! described in the Parallel Workloads Archive notes — KTH ran mostly
//! narrow jobs with short queues; the LANL CM-5 ran fixed power-of-two
//! partitions with many wide jobs. Pin them to real logs with
//! [`crate::swf::parse_trace`] before drawing per-site conclusions.

use super::{ModelSpec, WorkloadModel};
use simcore::SimSpan;

/// KTH SP2 (100 processors, Stockholm): small machine, strongly narrow
/// workload, 4-hour default queue limits.
pub fn kth() -> WorkloadModel {
    WorkloadModel::from_spec(ModelSpec {
        name: "KTH-syn",
        nodes: 100,
        category_mix: [0.52, 0.08, 0.32, 0.08],
        mean_gap_secs: 1_800.0,
        max_runtime: SimSpan::from_hours(60),
        short_median: 300.0,
        short_sigma: 1.5,
        long_median: 9_000.0,
        long_sigma: 1.0,
        width_decay: 0.9,
        pow2_boost: 6.0,
    })
}

/// LANL CM-5 (1024 processors): capability machine with rigid power-of-two
/// partitions of at least 32 nodes — everything is "wide" by the paper's
/// 8-processor criterion.
pub fn lanl_cm5() -> WorkloadModel {
    WorkloadModel::from_spec(ModelSpec {
        name: "LANL-CM5-syn",
        nodes: 1024,
        category_mix: [0.05, 0.55, 0.05, 0.35],
        mean_gap_secs: 1_200.0,
        max_runtime: SimSpan::from_hours(24),
        short_median: 600.0,
        short_sigma: 1.2,
        long_median: 10_000.0,
        long_sigma: 0.8,
        width_decay: 0.3,
        pow2_boost: 40.0,
    })
}

/// SDSC Blue Horizon (1152 processors): large IBM SP at the turn of the
/// millennium; wide mix with long site limits.
pub fn blue_horizon() -> WorkloadModel {
    WorkloadModel::from_spec(ModelSpec {
        name: "BLUE-syn",
        nodes: 1152,
        category_mix: [0.38, 0.22, 0.22, 0.18],
        mean_gap_secs: 500.0,
        max_runtime: SimSpan::from_hours(36),
        short_median: 400.0,
        short_sigma: 1.4,
        long_median: 12_000.0,
        long_sigma: 0.9,
        width_decay: 0.6,
        pow2_boost: 10.0,
    })
}

/// Look up any built-in model (the paper's two plus the presets) by name.
pub fn by_name(name: &str) -> Option<WorkloadModel> {
    match name {
        "ctc" => Some(super::ctc()),
        "sdsc" => Some(super::sdsc()),
        "kth" => Some(kth()),
        "lanl-cm5" => Some(lanl_cm5()),
        "blue-horizon" => Some(blue_horizon()),
        _ => None,
    }
}

/// Names accepted by [`by_name`].
pub const SITE_NAMES: [&str; 5] = ["ctc", "sdsc", "kth", "lanl-cm5", "blue-horizon"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_generate_valid_traces() {
        for name in SITE_NAMES {
            let model = by_name(name).unwrap();
            let trace = model.generate(2_000, 7);
            assert_eq!(trace.len(), 2_000, "{name}");
            for j in trace.jobs() {
                assert!(j.validate().is_ok(), "{name}");
                assert!(j.width <= model.nodes);
            }
            let rho = trace.offered_load();
            assert!(rho.is_finite() && rho > 0.05, "{name}: rho {rho}");
        }
    }

    #[test]
    fn category_mixes_hit_targets() {
        for name in SITE_NAMES {
            let model = by_name(name).unwrap();
            let trace = model.generate(20_000, 42);
            let dist = model.criteria.distribution(&trace);
            for (got, want) in dist.iter().zip(&model.category_mix) {
                assert!(
                    (got - want).abs() < 0.02,
                    "{name}: {dist:?} vs {:?}",
                    model.category_mix
                );
            }
        }
    }

    #[test]
    fn cm5_is_wide_dominated() {
        let trace = lanl_cm5().generate(5_000, 1);
        let wide = trace.jobs().iter().filter(|j| j.width > 8).count();
        assert!(
            wide as f64 / trace.len() as f64 > 0.8,
            "CM-5 should be mostly wide"
        );
    }

    #[test]
    fn kth_is_narrow_dominated() {
        let trace = kth().generate(5_000, 1);
        let narrow = trace.jobs().iter().filter(|j| j.width <= 8).count();
        assert!(
            narrow as f64 / trace.len() as f64 > 0.75,
            "KTH should be mostly narrow"
        );
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("asci-white").is_none());
    }
}
