//! Calibrated synthetic workload models.
//!
//! The paper drives its simulations with the CTC SP2 and SDSC SP2 logs from
//! the Parallel Workloads Archive. Those logs cannot be redistributed here,
//! so this module provides *calibrated generative stand-ins*:
//!
//! * the Short/Long × Narrow/Wide **category mix matches the paper's
//!   Tables 2 and 3** by construction (the category is drawn first, then
//!   the job's runtime and width are sampled conditioned on it);
//! * **widths** are power-of-two biased with a Zipf-like decay, as in every
//!   archive log;
//! * **runtimes** are log-normal within each length class — heavy-tailed
//!   bodies like the real logs;
//! * **arrivals** follow a diurnal non-homogeneous Poisson process.
//!
//! Real logs remain first-class citizens: parse them with
//! [`crate::swf::parse_trace`] and run the same experiments.

pub mod ctc;
pub mod lublin;
pub mod sdsc;
pub mod sites;

pub use ctc::ctc;
pub use lublin::LublinModel;
pub use sdsc::sdsc;
pub use sites::{blue_horizon, by_name, kth, lanl_cm5, SITE_NAMES};

use crate::arrival::{ArrivalProcess, DiurnalPoisson};
use crate::category::{Category, CategoryCriteria};
use crate::dist::{Categorical, LogNormal, Sample};
use crate::job::Job;
use crate::trace::Trace;
use simcore::{JobId, SimRng, SimSpan, SimTime};

/// A discrete width sampler over an inclusive range with power-of-two bias.
#[derive(Debug, Clone)]
pub struct WidthSampler {
    widths: Vec<u32>,
    dist: Categorical,
}

impl WidthSampler {
    /// Build a sampler over `[lo, hi]` where weight decays like
    /// `1/w^decay`, powers of two get `pow2_boost ×` weight, and other even
    /// widths get a mild 1.5× boost (serial-ish odd requests are rare above
    /// 1). `lo = hi` gives a point mass.
    pub fn new(lo: u32, hi: u32, decay: f64, pow2_boost: f64) -> Self {
        assert!(lo >= 1 && lo <= hi, "bad width range [{lo}, {hi}]");
        assert!(
            decay >= 0.0 && pow2_boost >= 1.0,
            "bad width-bias parameters"
        );
        let widths: Vec<u32> = (lo..=hi).collect();
        let weights: Vec<f64> = widths
            .iter()
            .map(|&w| {
                let base = 1.0 / (w as f64).powf(decay);
                if w.is_power_of_two() {
                    base * pow2_boost
                } else if w % 2 == 0 {
                    base * 1.5
                } else {
                    base
                }
            })
            .collect();
        WidthSampler {
            dist: Categorical::new(&weights),
            widths,
        }
    }

    /// Draw a width.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        self.widths[self.dist.sample_index(rng)]
    }
}

/// A calibrated synthetic workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadModel {
    /// Model name; stamped onto generated traces.
    pub name: &'static str,
    /// Machine size (processors).
    pub nodes: u32,
    /// Target SN/SW/LN/LW fractions (paper Tables 2–3).
    pub category_mix: [f64; 4],
    /// Mean inter-arrival gap in seconds at the model's base load.
    pub mean_gap_secs: f64,
    /// Category thresholds (1 h / 8 procs by default).
    pub criteria: CategoryCriteria,
    /// Maximum runtime (the site's wall-clock cap).
    pub max_runtime: SimSpan,
    category_dist: Categorical,
    narrow_widths: WidthSampler,
    wide_widths: WidthSampler,
    short_runtime: LogNormal,
    long_runtime: LogNormal,
}

/// Everything needed to assemble a [`WorkloadModel`]; used by the CTC and
/// SDSC presets and available for user-defined sites.
#[derive(Debug, Clone, Copy)]
pub struct ModelSpec {
    /// Model name.
    pub name: &'static str,
    /// Machine size.
    pub nodes: u32,
    /// Target SN/SW/LN/LW fractions; must sum to 1 (±1e-6).
    pub category_mix: [f64; 4],
    /// Mean inter-arrival gap in seconds.
    pub mean_gap_secs: f64,
    /// Site wall-clock cap.
    pub max_runtime: SimSpan,
    /// Median runtime of Short jobs, seconds.
    pub short_median: f64,
    /// Log-scale spread of Short runtimes.
    pub short_sigma: f64,
    /// Median runtime of Long jobs, seconds.
    pub long_median: f64,
    /// Log-scale spread of Long runtimes.
    pub long_sigma: f64,
    /// Zipf-like decay of the width distribution.
    pub width_decay: f64,
    /// Extra weight multiplier for power-of-two widths.
    pub pow2_boost: f64,
}

impl WorkloadModel {
    /// Assemble a model from a spec.
    pub fn from_spec(spec: ModelSpec) -> Self {
        let mix_sum: f64 = spec.category_mix.iter().sum();
        assert!(
            (mix_sum - 1.0).abs() < 1e-6,
            "category mix must sum to 1, got {mix_sum}"
        );
        let criteria = CategoryCriteria::default();
        assert!(
            spec.nodes > criteria.narrow_max,
            "machine must be wider than the narrow threshold"
        );
        assert!(
            spec.max_runtime > criteria.short_max,
            "wall-clock cap must allow Long jobs"
        );
        WorkloadModel {
            name: spec.name,
            nodes: spec.nodes,
            category_mix: spec.category_mix,
            mean_gap_secs: spec.mean_gap_secs,
            criteria,
            max_runtime: spec.max_runtime,
            category_dist: Categorical::new(&spec.category_mix),
            narrow_widths: WidthSampler::new(
                1,
                criteria.narrow_max,
                spec.width_decay,
                spec.pow2_boost,
            ),
            wide_widths: WidthSampler::new(
                criteria.narrow_max + 1,
                spec.nodes,
                spec.width_decay,
                spec.pow2_boost,
            ),
            short_runtime: LogNormal::from_median(spec.short_median, spec.short_sigma),
            long_runtime: LogNormal::from_median(spec.long_median, spec.long_sigma),
        }
    }

    /// Sample one job's `(runtime, width)` for a given category.
    fn sample_shape(&self, cat: Category, rng: &mut SimRng) -> (SimSpan, u32) {
        let short_max = self.criteria.short_max.as_secs();
        let runtime = if cat.is_short() {
            self.short_runtime.sample_clamped_int(rng, 1, short_max)
        } else {
            self.long_runtime
                .sample_clamped_int(rng, short_max + 1, self.max_runtime.as_secs())
        };
        let width = if cat.is_narrow() {
            self.narrow_widths.sample(rng)
        } else {
            self.wide_widths.sample(rng)
        };
        (SimSpan::new(runtime), width)
    }

    /// Generate an `n`-job trace, deterministically from `seed`.
    /// Estimates are exact (`estimate = runtime`); layer an
    /// [`crate::estimate::EstimateModel`] on top for the Section-5 studies.
    pub fn generate(&self, n: usize, seed: u64) -> Trace {
        let mut root = SimRng::seed_from_u64(seed);
        // Separate streams so arrivals never shift when shape sampling
        // changes, and vice versa.
        let mut arrival_rng = root.split();
        let mut shape_rng = root.split();

        let arrivals = DiurnalPoisson::working_hours(self.mean_gap_secs);
        let mut t = SimTime::ZERO;
        let mut jobs = Vec::with_capacity(n);
        for _ in 0..n {
            t = arrivals.next_after(t, &mut arrival_rng);
            let cat = Category::ALL[self.category_dist.sample_index(&mut shape_rng)];
            let (runtime, width) = self.sample_shape(cat, &mut shape_rng);
            jobs.push(Job {
                id: JobId(0),
                arrival: t,
                runtime,
                estimate: runtime,
                width,
            });
        }
        Trace::new(self.name, self.nodes, jobs).expect("generated jobs are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ModelSpec {
        ModelSpec {
            name: "tiny",
            nodes: 64,
            category_mix: [0.4, 0.2, 0.3, 0.1],
            mean_gap_secs: 120.0,
            max_runtime: SimSpan::from_hours(18),
            short_median: 400.0,
            short_sigma: 1.2,
            long_median: 10_000.0,
            long_sigma: 0.9,
            width_decay: 0.7,
            pow2_boost: 8.0,
        }
    }

    #[test]
    fn width_sampler_respects_range() {
        let w = WidthSampler::new(9, 64, 0.7, 8.0);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = w.sample(&mut rng);
            assert!((9..=64).contains(&x));
        }
    }

    #[test]
    fn width_sampler_prefers_powers_of_two() {
        let w = WidthSampler::new(1, 64, 0.7, 8.0);
        let mut rng = SimRng::seed_from_u64(2);
        let mut pow2 = 0;
        let n = 50_000;
        for _ in 0..n {
            if w.sample(&mut rng).is_power_of_two() {
                pow2 += 1;
            }
        }
        // 7 of 64 widths are powers of two (11 %); the boost should push
        // their share well past half.
        assert!(
            pow2 as f64 / n as f64 > 0.5,
            "pow2 share {}",
            pow2 as f64 / n as f64
        );
    }

    #[test]
    fn width_sampler_point_mass() {
        let w = WidthSampler::new(5, 5, 1.0, 2.0);
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(w.sample(&mut rng), 5);
    }

    #[test]
    fn generated_trace_matches_category_mix() {
        let model = WorkloadModel::from_spec(tiny_spec());
        let trace = model.generate(20_000, 42);
        let dist = model.criteria.distribution(&trace);
        for (got, want) in dist.iter().zip(&model.category_mix) {
            assert!(
                (got - want).abs() < 0.02,
                "category mix off: got {dist:?}, want {:?}",
                model.category_mix
            );
        }
    }

    #[test]
    fn generated_jobs_are_valid_and_exactly_estimated() {
        let model = WorkloadModel::from_spec(tiny_spec());
        let trace = model.generate(5_000, 7);
        for j in trace.jobs() {
            assert!(j.validate().is_ok());
            assert_eq!(j.estimate, j.runtime);
            assert!(j.width <= 64);
            assert!(j.runtime <= model.max_runtime);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let model = WorkloadModel::from_spec(tiny_spec());
        assert_eq!(model.generate(500, 1).jobs(), model.generate(500, 1).jobs());
        assert_ne!(model.generate(500, 1).jobs(), model.generate(500, 2).jobs());
    }

    #[test]
    fn short_and_long_runtimes_straddle_the_threshold() {
        let model = WorkloadModel::from_spec(tiny_spec());
        let trace = model.generate(5_000, 3);
        let c = &model.criteria;
        for j in trace.jobs() {
            let cat = c.categorize(j);
            if cat.is_short() {
                assert!(j.runtime <= c.short_max);
            } else {
                assert!(j.runtime > c.short_max);
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_mix() {
        let mut spec = tiny_spec();
        spec.category_mix = [0.5, 0.5, 0.5, 0.5];
        WorkloadModel::from_spec(spec);
    }
}
