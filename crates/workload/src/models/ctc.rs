//! The CTC SP2 workload model.
//!
//! Stand-in for the Cornell Theory Center 430-node IBM SP2 log
//! (`CTC-SP2-1996-3.1-cln` in the Parallel Workloads Archive). Calibration
//! targets, from the paper:
//!
//! * machine size 430 (the provided paper text reads "43 node" — an OCR
//!   artifact; the CTC SP2's batch partition had 430 nodes);
//! * Table 2 category mix: SN 45.06 %, SW 11.84 %, LN 30.26 %, LW 12.84 %
//!   (digits reconstructed from the OCR-damaged "4.6 / 11.84 / 3.26 /
//!   12.84" — the unique completion consistent with the printed suffixes
//!   that sums to 100.00 %);
//! * 18-hour wall-clock cap (the site's published limit).
//!
//! Body shapes (medians/spreads) follow the archive log's published
//! statistics: short jobs cluster around a few minutes, long jobs around
//! 3–4 hours, widths strongly favour powers of two and small counts.

use super::{ModelSpec, WorkloadModel};
use simcore::SimSpan;

/// The target category mix of the CTC trace (paper Table 2).
pub const CTC_CATEGORY_MIX: [f64; 4] = [0.4506, 0.1184, 0.3026, 0.1284];

/// Number of processors in the CTC SP2 batch partition.
pub const CTC_NODES: u32 = 430;

/// Build the CTC workload model.
///
/// The base mean inter-arrival gap (1040 s) puts the offered load near 0.6
/// ("normal load"); experiments derive the paper's high-load condition with
/// [`crate::load::scale_to_load`].
pub fn ctc() -> WorkloadModel {
    WorkloadModel::from_spec(ModelSpec {
        name: "CTC-syn",
        nodes: CTC_NODES,
        category_mix: CTC_CATEGORY_MIX,
        mean_gap_secs: 1040.0,
        max_runtime: SimSpan::from_hours(18),
        short_median: 380.0,
        short_sigma: 1.4,
        long_median: 11_000.0,
        long_sigma: 0.85,
        width_decay: 0.75,
        pow2_boost: 8.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sums_to_one() {
        assert!((CTC_CATEGORY_MIX.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn generated_mix_matches_table_2() {
        let model = ctc();
        let trace = model.generate(30_000, 42);
        let dist = model.criteria.distribution(&trace);
        for (got, want) in dist.iter().zip(&CTC_CATEGORY_MIX) {
            assert!(
                (got - want).abs() < 0.015,
                "got {dist:?}, want {CTC_CATEGORY_MIX:?}"
            );
        }
    }

    #[test]
    fn base_load_is_normal() {
        let trace = ctc().generate(20_000, 7);
        let rho = trace.offered_load();
        assert!(
            (0.3..0.95).contains(&rho),
            "base offered load {rho} out of band"
        );
    }

    #[test]
    fn machine_size_and_cap() {
        let model = ctc();
        assert_eq!(model.nodes, 430);
        assert_eq!(model.max_runtime, SimSpan::from_hours(18));
        let trace = model.generate(5_000, 3);
        assert_eq!(trace.nodes(), 430);
    }
}
