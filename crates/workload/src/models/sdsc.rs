//! The SDSC SP2 workload model.
//!
//! Stand-in for the San Diego Supercomputer Center 128-node IBM SP2 log
//! (`SDSC-SP2-1998-4.2-cln`). Calibration targets, from the paper:
//!
//! * machine size 128;
//! * Table 3 category mix: SN 47.24 %, SW 21.44 %, LN 20.94 %, LW 10.38 %
//!   (digits reconstructed from the OCR-damaged "47.24 / 21.44 / 2.94 /
//!   1.38" — the unique completion consistent with the printed suffixes
//!   that sums to 100.00 %).
//!
//! Compared to CTC, SDSC has relatively more wide jobs (its 128-node
//! machine ran capability workloads) and fewer long-narrow ones — which is
//! exactly why the paper's *overall* averages differ between traces while
//! the *per-category* trends agree.

use super::{ModelSpec, WorkloadModel};
use simcore::SimSpan;

/// The target category mix of the SDSC trace (paper Table 3).
pub const SDSC_CATEGORY_MIX: [f64; 4] = [0.4724, 0.2144, 0.2094, 0.1038];

/// Number of processors in the SDSC SP2.
pub const SDSC_NODES: u32 = 128;

/// Build the SDSC workload model. Base load near 0.6, as for CTC.
pub fn sdsc() -> WorkloadModel {
    WorkloadModel::from_spec(ModelSpec {
        name: "SDSC-syn",
        nodes: SDSC_NODES,
        category_mix: SDSC_CATEGORY_MIX,
        mean_gap_secs: 1500.0,
        max_runtime: SimSpan::from_hours(36),
        short_median: 330.0,
        short_sigma: 1.5,
        long_median: 12_500.0,
        long_sigma: 0.9,
        width_decay: 0.65,
        pow2_boost: 10.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sums_to_one() {
        assert!((SDSC_CATEGORY_MIX.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn generated_mix_matches_table_3() {
        let model = sdsc();
        let trace = model.generate(30_000, 42);
        let dist = model.criteria.distribution(&trace);
        for (got, want) in dist.iter().zip(&SDSC_CATEGORY_MIX) {
            assert!(
                (got - want).abs() < 0.015,
                "got {dist:?}, want {SDSC_CATEGORY_MIX:?}"
            );
        }
    }

    #[test]
    fn base_load_is_normal() {
        let trace = sdsc().generate(20_000, 7);
        let rho = trace.offered_load();
        assert!(
            (0.3..0.95).contains(&rho),
            "base offered load {rho} out of band"
        );
    }

    #[test]
    fn machine_size() {
        let model = sdsc();
        assert_eq!(model.nodes, 128);
        assert_eq!(model.generate(2_000, 1).nodes(), 128);
    }

    #[test]
    fn sdsc_is_wider_than_ctc_relatively() {
        // Wide fraction: SDSC ≈ 32 %, CTC ≈ 25 %.
        let wide_sdsc = SDSC_CATEGORY_MIX[1] + SDSC_CATEGORY_MIX[3];
        let wide_ctc =
            super::super::ctc::CTC_CATEGORY_MIX[1] + super::super::ctc::CTC_CATEGORY_MIX[3];
        assert!(wide_sdsc > wide_ctc);
    }
}
