//! A Lublin–Feitelson-style workload model.
//!
//! Structure follows Lublin & Feitelson, *"The workload on parallel
//! supercomputers: modeling the characteristics of rigid jobs"* (JPDC
//! 2003) — the de-facto standard generative model:
//!
//! * a fraction of jobs are **serial** (width 1);
//! * parallel widths are `2^u` with `u` drawn from a **two-stage uniform**
//!   over `[log₂ 1, log₂ N]`, with a bias toward exact powers of two;
//! * runtimes are **hyper-gamma**, with the long-component probability a
//!   *linear function of the job's log-size* — bigger jobs run longer, the
//!   model's signature runtime/size correlation;
//! * arrivals follow a daily cycle.
//!
//! The numeric constants below are re-calibrated defaults in the published
//! model's structure, not the paper's exact fitted values (which we cannot
//! verify offline); they are chosen to land in the same regime (≈ 25 %
//! serial jobs, strong power-of-two preference, runtime medians of minutes
//! to hours). Use [`LublinModel::default_for`] for a machine-sized preset,
//! or construct the fields directly for a custom fit.

use crate::arrival::{ArrivalProcess, DiurnalPoisson};
use crate::dist::{Gamma, HyperGamma, Sample, TwoStageUniform};
use crate::job::Job;
use crate::trace::Trace;
use simcore::{JobId, SimRng, SimSpan, SimTime};

/// Lublin–Feitelson-style workload generator.
#[derive(Debug, Clone)]
pub struct LublinModel {
    /// Machine size.
    pub nodes: u32,
    /// Probability a job is serial (width 1).
    pub serial_prob: f64,
    /// Probability a parallel job's width is rounded to a power of two.
    pub pow2_prob: f64,
    /// Distribution of `log₂(width)` for parallel jobs.
    pub log_size: TwoStageUniform,
    /// Runtime distribution (seconds); the first component is the short one.
    pub runtime: HyperGamma,
    /// Long-component probability as a function of log₂(size):
    /// `p_short = pa · log₂(size) + pb`, clamped to `[0, 1]`.
    pub pa: f64,
    /// Intercept of the size→runtime-class line.
    pub pb: f64,
    /// Site wall-clock cap (runtimes clamped here).
    pub max_runtime: SimSpan,
    /// Mean inter-arrival gap in seconds.
    pub mean_gap_secs: f64,
}

impl LublinModel {
    /// A reasonable preset for a machine of `nodes` processors.
    pub fn default_for(nodes: u32) -> Self {
        assert!(nodes >= 2, "model needs a parallel machine");
        let hi = (nodes as f64).log2();
        LublinModel {
            nodes,
            serial_prob: 0.25,
            pow2_prob: 0.75,
            // Most parallel jobs small-to-medium; a 30 % plateau of large.
            log_size: TwoStageUniform::new(0.8, 0.6 * hi, hi, 0.7),
            // Short body ~ minutes, long bulge ~ hours.
            runtime: HyperGamma::new(Gamma::new(2.0, 300.0), Gamma::new(2.5, 6_000.0), 0.6),
            // Larger jobs lean toward the long component: p_short falls
            // with log2(size) from ~0.75 (serial) toward ~0.3 (full machine).
            pa: -0.45 / hi,
            pb: 0.75,
            max_runtime: SimSpan::from_hours(36),
            mean_gap_secs: 900.0,
        }
    }

    fn sample_width(&self, rng: &mut SimRng) -> u32 {
        if rng.chance(self.serial_prob) {
            return 1;
        }
        let u = self
            .log_size
            .sample(rng)
            .clamp(0.0, (self.nodes as f64).log2());
        let width = if rng.chance(self.pow2_prob) {
            2f64.powf(u.round())
        } else {
            2f64.powf(u)
        };
        (width.round() as u32).clamp(2, self.nodes)
    }

    fn sample_runtime(&self, width: u32, rng: &mut SimRng) -> SimSpan {
        let p_short = self.pa * (width.max(1) as f64).log2() + self.pb;
        let secs = self.runtime.sample_with_p(p_short, rng);
        let secs = secs.round().clamp(1.0, self.max_runtime.as_secs() as f64);
        SimSpan::new(secs as u64)
    }

    /// Generate an `n`-job trace deterministically from `seed`
    /// (exact estimates, like the other models).
    pub fn generate(&self, n: usize, seed: u64) -> Trace {
        let mut root = SimRng::seed_from_u64(seed);
        let mut arrival_rng = root.split();
        let mut shape_rng = root.split();
        let arrivals = DiurnalPoisson::working_hours(self.mean_gap_secs);
        let mut t = SimTime::ZERO;
        let mut jobs = Vec::with_capacity(n);
        for _ in 0..n {
            t = arrivals.next_after(t, &mut arrival_rng);
            let width = self.sample_width(&mut shape_rng);
            let runtime = self.sample_runtime(width, &mut shape_rng);
            jobs.push(Job {
                id: JobId(0),
                arrival: t,
                runtime,
                estimate: runtime,
                width,
            });
        }
        Trace::new("Lublin-syn", self.nodes, jobs).expect("generated jobs are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LublinModel {
        LublinModel::default_for(256)
    }

    #[test]
    fn serial_fraction_matches() {
        let trace = model().generate(20_000, 1);
        let serial = trace.jobs().iter().filter(|j| j.width == 1).count();
        let frac = serial as f64 / trace.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "serial fraction {frac}");
    }

    #[test]
    fn powers_of_two_dominate_parallel_widths() {
        let trace = model().generate(20_000, 2);
        let parallel: Vec<&Job> = trace.jobs().iter().filter(|j| j.width > 1).collect();
        let pow2 = parallel
            .iter()
            .filter(|j| j.width.is_power_of_two())
            .count();
        let frac = pow2 as f64 / parallel.len() as f64;
        assert!(frac > 0.7, "pow2 fraction {frac}");
    }

    #[test]
    fn widths_within_machine() {
        let trace = model().generate(5_000, 3);
        for j in trace.jobs() {
            assert!(j.width >= 1 && j.width <= 256);
            assert!(j.validate().is_ok());
        }
    }

    #[test]
    fn runtime_correlates_with_size() {
        // The model's signature: mean runtime of wide jobs exceeds mean
        // runtime of narrow jobs.
        let trace = model().generate(30_000, 4);
        let mean_rt = |pred: &dyn Fn(&Job) -> bool| {
            let sel: Vec<f64> = trace
                .jobs()
                .iter()
                .filter(|j| pred(j))
                .map(|j| j.runtime.as_secs_f64())
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        let narrow = mean_rt(&|j| j.width <= 4);
        let wide = mean_rt(&|j| j.width >= 64);
        assert!(
            wide > narrow * 1.2,
            "wide jobs ({wide:.0}s) should run markedly longer than narrow ({narrow:.0}s)"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let m = model();
        assert_eq!(m.generate(500, 9).jobs(), m.generate(500, 9).jobs());
        assert_ne!(m.generate(500, 9).jobs(), m.generate(500, 10).jobs());
    }

    #[test]
    fn runtimes_respect_cap() {
        let mut m = model();
        m.max_runtime = SimSpan::from_hours(2);
        let trace = m.generate(5_000, 5);
        for j in trace.jobs() {
            assert!(j.runtime <= SimSpan::from_hours(2));
        }
    }

    #[test]
    fn offered_load_is_sane() {
        let trace = model().generate(20_000, 6);
        let rho = trace.offered_load();
        assert!(rho.is_finite() && rho > 0.05, "rho {rho}");
    }

    #[test]
    #[should_panic(expected = "parallel machine")]
    fn rejects_serial_machine() {
        LublinModel::default_for(1);
    }
}
