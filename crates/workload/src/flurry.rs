//! Workload flurries — bursts of near-identical jobs from one user.
//!
//! Tsafrir & Feitelson showed that real archive logs contain *flurries*:
//! a single user submitting hundreds of nearly identical jobs in a short
//! window, and that simulation conclusions can hinge on whether such a
//! flurry is present ("Instability in parallel job scheduling simulation:
//! the role of workload flurries"). This module injects controlled
//! flurries into a trace so that robustness of any comparison can be
//! tested directly — the `flurry` repro experiment does exactly that for
//! this paper's headline results.

use crate::job::Job;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use simcore::{JobId, SimRng, SimSpan, SimTime};

/// Description of one injected flurry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlurrySpec {
    /// When the burst starts.
    pub start: SimTime,
    /// Number of jobs in the burst.
    pub count: u32,
    /// Mean gap between burst submissions (seconds; exponential).
    pub mean_gap_secs: f64,
    /// Runtime of each flurry job.
    pub runtime: SimSpan,
    /// Estimate of each flurry job (≥ runtime).
    pub estimate: SimSpan,
    /// Width of each flurry job.
    pub width: u32,
    /// Relative jitter applied to each job's runtime (0 = identical jobs;
    /// 0.1 = ±10 % uniform).
    pub runtime_jitter: f64,
}

impl FlurrySpec {
    /// A typical "parameter sweep gone wild" flurry: many short narrow
    /// jobs submitted seconds apart.
    pub fn short_narrow(start: SimTime, count: u32) -> Self {
        FlurrySpec {
            start,
            count,
            mean_gap_secs: 10.0,
            runtime: SimSpan::from_mins(5),
            estimate: SimSpan::from_mins(30),
            width: 1,
            runtime_jitter: 0.1,
        }
    }

    fn validate(&self) {
        assert!(self.count > 0, "flurry needs at least one job");
        assert!(self.width > 0, "flurry jobs need processors");
        assert!(!self.runtime.is_zero(), "flurry jobs need positive runtime");
        assert!(
            self.estimate >= self.runtime,
            "flurry estimate below runtime"
        );
        assert!(
            self.mean_gap_secs > 0.0 && self.mean_gap_secs.is_finite(),
            "flurry mean gap must be positive"
        );
        assert!(
            (0.0..1.0).contains(&self.runtime_jitter),
            "runtime jitter must be in [0, 1)"
        );
    }
}

/// Inject a flurry into a trace, deterministically from `seed`.
/// Returns the combined trace (re-sorted, ids reassigned) plus the number
/// of injected jobs.
pub fn inject_flurry(trace: &Trace, spec: &FlurrySpec, seed: u64) -> (Trace, u32) {
    spec.validate();
    assert!(spec.width <= trace.nodes(), "flurry wider than the machine");
    let mut rng = SimRng::seed_from_u64(seed);
    let mut jobs: Vec<Job> = trace.jobs().to_vec();
    let mut t = spec.start;
    for _ in 0..spec.count {
        let jitter = 1.0 + spec.runtime_jitter * (2.0 * rng.f64() - 1.0);
        let runtime =
            SimSpan::new((spec.runtime.as_secs() as f64 * jitter).round().max(1.0) as u64);
        jobs.push(Job {
            id: JobId(0),
            arrival: t,
            runtime,
            estimate: spec.estimate.max(runtime),
            width: spec.width,
        });
        let gap = (-rng.f64_open().ln() * spec.mean_gap_secs).ceil().max(1.0) as u64;
        t += SimSpan::new(gap);
    }
    let combined =
        Trace::new(trace.name().to_string(), trace.nodes(), jobs).expect("flurry jobs are valid");
    (combined, spec.count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_trace() -> Trace {
        let jobs = (0..20)
            .map(|i| Job {
                id: JobId(0),
                arrival: SimTime::new(i * 1_000),
                runtime: SimSpan::new(500),
                estimate: SimSpan::new(500),
                width: 4,
            })
            .collect();
        Trace::new("base", 16, jobs).unwrap()
    }

    #[test]
    fn injection_adds_exactly_count_jobs() {
        let spec = FlurrySpec::short_narrow(SimTime::new(5_000), 50);
        let (t, added) = inject_flurry(&base_trace(), &spec, 1);
        assert_eq!(added, 50);
        assert_eq!(t.len(), 70);
    }

    #[test]
    fn flurry_jobs_cluster_after_start() {
        let spec = FlurrySpec::short_narrow(SimTime::new(5_000), 100);
        let (t, _) = inject_flurry(&base_trace(), &spec, 2);
        let flurry_jobs: Vec<&Job> = t.jobs().iter().filter(|j| j.width == 1).collect();
        assert_eq!(flurry_jobs.len(), 100);
        for j in &flurry_jobs {
            assert!(j.arrival >= SimTime::new(5_000));
        }
        // Mean gap ~10 s: the whole burst spans far less than the base
        // trace's 1000 s inter-arrival scale.
        let last = flurry_jobs.iter().map(|j| j.arrival).max().unwrap();
        assert!(
            last < SimTime::new(5_000 + 100 * 60),
            "burst too spread: {last}"
        );
    }

    #[test]
    fn jitter_zero_gives_identical_runtimes() {
        let spec = FlurrySpec {
            runtime_jitter: 0.0,
            ..FlurrySpec::short_narrow(SimTime::ZERO, 30)
        };
        let (t, _) = inject_flurry(&base_trace(), &spec, 3);
        let runtimes: Vec<u64> = t
            .jobs()
            .iter()
            .filter(|j| j.width == 1)
            .map(|j| j.runtime.as_secs())
            .collect();
        assert!(runtimes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn jitter_bounds_respected() {
        let spec = FlurrySpec {
            runtime_jitter: 0.2,
            ..FlurrySpec::short_narrow(SimTime::ZERO, 200)
        };
        let (t, _) = inject_flurry(&base_trace(), &spec, 4);
        let base = spec.runtime.as_secs() as f64;
        for j in t.jobs().iter().filter(|j| j.width == 1) {
            let r = j.runtime.as_secs() as f64;
            assert!(
                r >= base * 0.79 && r <= base * 1.21,
                "runtime {r} out of jitter band"
            );
            assert!(j.estimate >= j.runtime);
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let spec = FlurrySpec::short_narrow(SimTime::new(100), 25);
        let (a, _) = inject_flurry(&base_trace(), &spec, 7);
        let (b, _) = inject_flurry(&base_trace(), &spec, 7);
        let (c, _) = inject_flurry(&base_trace(), &spec, 8);
        assert_eq!(a.jobs(), b.jobs());
        assert_ne!(a.jobs(), c.jobs());
    }

    #[test]
    #[should_panic(expected = "wider than the machine")]
    fn rejects_overwide_flurry() {
        let spec = FlurrySpec {
            width: 64,
            ..FlurrySpec::short_narrow(SimTime::ZERO, 5)
        };
        inject_flurry(&base_trace(), &spec, 1);
    }
}
