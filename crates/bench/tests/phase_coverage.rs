//! Per-phase self-profiling must actually account for the run.
//!
//! The phase taxonomy (event pop + arrival/completion/wake handling,
//! with queue-ops/compress/backfill nested inside the handlers) is only
//! useful if its top-level timers cover most of the event loop's wall
//! time — a profiler that explains 20% of a run is noise. This test
//! runs a deep-queue cell (high load, conservative backfilling, SJF —
//! lots of queue pressure and compression work) with the phase
//! accumulator attached and requires the top-level phase sum to reach
//! at least 80% of the measured wall time. It also pins decision
//! neutrality: the profiled run's fingerprint equals the plain run's.

use backfill_sim::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn deep_queue_cell() -> (Trace, SchedulerKind, Policy) {
    // Systematic 3x overestimates make jobs complete early, so the
    // conservative scheduler's compression path actually runs.
    let scenario = Scenario {
        estimate: EstimateModel::systematic(3.0),
        ..Scenario::high_load(TraceSource::Ctc {
            jobs: 3_000,
            seed: 42,
        })
    };
    (
        scenario.materialize(),
        SchedulerKind::Conservative,
        Policy::Sjf,
    )
}

#[test]
fn top_level_phases_cover_at_least_80_percent_of_wall_time() {
    let (trace, kind, policy) = deep_queue_cell();
    let phases = Rc::new(RefCell::new(obs::PhaseAcc::new()));

    let t0 = std::time::Instant::now();
    let (schedule, _) = simulate_observed(
        &trace,
        kind,
        policy,
        SimOptions::with_phases(phases.clone()),
    );
    let wall_ns = t0.elapsed().as_nanos() as u64;
    schedule.validate().expect("schedule stays valid");

    let acc = phases.borrow();
    let covered = acc.top_level_sum_ns();
    assert!(
        covered <= wall_ns,
        "self-accounted time ({covered} ns) cannot exceed wall time ({wall_ns} ns)"
    );
    assert!(
        covered as f64 >= 0.8 * wall_ns as f64,
        "top-level phases cover {covered} of {wall_ns} ns ({:.1}%), need >= 80%",
        100.0 * covered as f64 / wall_ns as f64
    );

    // Every top-level phase family that this workload exercises showed up.
    for phase in [
        obs::Phase::EventPop,
        obs::Phase::Arrival,
        obs::Phase::Completion,
    ] {
        assert!(
            acc.histogram(phase).count() > 0,
            "phase {} never fired on a deep-queue cell",
            phase.name()
        );
    }
    // The conservative scheduler's nested sub-phases fired too.
    assert!(acc.histogram(obs::Phase::QueueOps).count() > 0);
    assert!(acc.histogram(obs::Phase::Compress).count() > 0);
}

#[test]
fn phase_profiling_is_decision_neutral() {
    let (trace, kind, policy) = deep_queue_cell();
    let plain = simulate(&trace, kind, policy);
    let phases = Rc::new(RefCell::new(obs::PhaseAcc::new()));
    let (profiled, _) = simulate_observed(
        &trace,
        kind,
        policy,
        SimOptions::with_phases(phases.clone()),
    );
    assert_eq!(
        plain.fingerprint(),
        profiled.fingerprint(),
        "attaching the phase accumulator must not change a single decision"
    );
    assert!(
        phases.borrow().top_level_sum_ns() > 0,
        "the profiled run must actually have accumulated time"
    );
}
