//! Per-event allocation budget for the simulate hot path.
//!
//! The allocation-free event path (DESIGN.md §16) claims the simulator's
//! steady state stops allocating per event: the ladder event queue reuses
//! buckets, the profile's slab recycles slots, and schedulers reuse their
//! `starts`/sort scratch buffers across events. This harness pins that
//! claim with a counting `#[global_allocator]`: a deep-queue Conservative
//! cell (the allocation-heaviest configuration — per-arrival reservations
//! plus compression passes) must stay under a fixed allocations-per-event
//! budget.
//!
//! The budget is enforced in **release** builds only: debug builds run
//! `debug_assert!(invariants_ok())` after every profile mutation and the
//! EASY differential profile rebuild, both of which allocate deliberately
//! and would swamp the measurement. CI runs this test with `--release` in
//! the perf-smoke job.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Wraps the system allocator, counting allocations and allocated bytes
/// while enabled. Deallocations are not counted — the budget is about
/// allocator traffic on the hot path, and every alloc has its dealloc.
struct CountingAlloc;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Count `(allocations, bytes)` during `f`.
fn counted<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    ALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
    let out = f();
    ENABLED.store(false, Ordering::Relaxed);
    (
        out,
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

#[test]
fn deep_queue_conservative_stays_under_allocation_budget() {
    use backfill_sim::prelude::*;

    // The BENCH deep-queue scenario at reduced size: queue depth still
    // climbs into the hundreds, so compression passes and reservation
    // churn dominate exactly as in the full cell.
    let scenario = Scenario {
        source: TraceSource::Ctc {
            jobs: 3_000,
            seed: 7,
        },
        estimate: EstimateModel::User(UserModelParams::capped(SimSpan::from_hours(18))),
        estimate_seed: 7,
        load: Some(2.2),
    };
    let trace = scenario.materialize();

    let ((schedule, fingerprint), allocs, bytes) = counted(|| {
        let s = simulate(&trace, SchedulerKind::Conservative, Policy::XFactor);
        let fp = s.fingerprint();
        (s, fp)
    });
    let events = schedule.events.max(1);
    let per_event = allocs as f64 / events as f64;
    let bytes_per_event = bytes as f64 / events as f64;
    eprintln!(
        "alloc budget: {allocs} allocations / {events} events = \
         {per_event:.2} allocs/event ({bytes_per_event:.0} B/event), \
         fingerprint {fingerprint:#018x}"
    );

    // Sanity in every build: the run did real work and the counter saw it.
    assert!(schedule.outcomes.len() == 3_000);
    assert!(allocs > 0, "counting allocator observed nothing");

    if cfg!(debug_assertions) {
        // Debug builds allocate inside debug_assert-guarded differential
        // checks; the pinned budget below would measure those, not the
        // hot path. The release CI run enforces it.
        return;
    }

    // Pinned budget. The steady-state event path allocates only for
    // amortized container growth (slab/order/queue/ladder-bucket Vecs) —
    // measured ~0.8 allocs/event on this cell; 4 leaves headroom for
    // allocator-pattern drift without letting a per-event regression
    // (a clone, a collect, a fresh scratch) back in.
    assert!(
        per_event <= 4.0,
        "allocation budget blown: {per_event:.2} allocs/event > 4.0 \
         ({allocs} allocs over {events} events)"
    );
}
