//! The trace analyzer and `metrics::aggregate` must tell one story.
//!
//! Run a deterministic scenario with the decision recorder attached,
//! round-trip the events through the JSONL wire format, reconstruct
//! timelines with `bench::trace_analysis`, and compare per-category mean
//! wait and mean bounded slowdown against `Schedule::stats` computed
//! from the same run's outcomes. The two pipelines share no code beyond
//! the τ = 10 s constant, so agreement here pins both.

use backfill_sim::prelude::*;
use bench::trace_analysis::{analyze, parse_jsonl};
use obs::trace::{Recorder, TraceCategory};
use std::cell::RefCell;
use std::rc::Rc;

fn assert_close(label: &str, a: f64, b: f64) {
    let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= tol,
        "{label}: analyzer {a} vs aggregate {b}"
    );
}

fn crosscheck(kind: SchedulerKind, policy: Policy, scenario: Scenario) {
    let trace = scenario.materialize();
    let recorder = Rc::new(RefCell::new(Recorder::new(1 << 17)));
    let (schedule, _) = simulate_observed(
        &trace,
        kind,
        policy,
        SimOptions::with_recorder(recorder.clone()),
    );
    schedule.validate().expect("valid schedule");
    let stats = schedule.stats(&CategoryCriteria::default());

    // Round-trip through the wire format, as a real consumer would.
    let mut jsonl = Vec::new();
    recorder.borrow().write_jsonl(&mut jsonl).unwrap();
    assert_eq!(recorder.borrow().dropped(), 0, "ring too small for test");
    let events = parse_jsonl(std::str::from_utf8(&jsonl).unwrap()).expect("parse trace");
    let analysis = analyze(&events);

    assert_eq!(analysis.incomplete, 0);
    assert_eq!(analysis.overall.count, trace.jobs().len() as u64);
    assert_close(
        "overall wait",
        analysis.overall.mean_wait(),
        stats.overall.avg_wait(),
    );
    assert_close(
        "overall slowdown",
        analysis.overall.mean_slowdown(),
        stats.overall.avg_slowdown(),
    );

    for (cat, trace_cat) in [
        (Category::SN, TraceCategory::SN),
        (Category::SW, TraceCategory::SW),
        (Category::LN, TraceCategory::LN),
        (Category::LW, TraceCategory::LW),
    ] {
        let expected = stats.category(cat);
        match analysis.category(trace_cat) {
            Some(summary) => {
                assert_eq!(summary.count, expected.count(), "{cat} count");
                assert_close(
                    &format!("{cat} wait"),
                    summary.mean_wait(),
                    expected.avg_wait(),
                );
                assert_close(
                    &format!("{cat} slowdown"),
                    summary.mean_slowdown(),
                    expected.avg_slowdown(),
                );
            }
            None => assert_eq!(expected.count(), 0, "{cat} missing from analysis"),
        }
    }
}

#[test]
fn analyzer_matches_aggregate_easy_exact() {
    crosscheck(
        SchedulerKind::Easy,
        Policy::Sjf,
        Scenario::high_load(TraceSource::Ctc {
            jobs: 200,
            seed: 11,
        }),
    );
}

#[test]
fn analyzer_matches_aggregate_conservative_noisy() {
    crosscheck(
        SchedulerKind::Conservative,
        Policy::XFactor,
        Scenario {
            source: TraceSource::Sdsc { jobs: 200, seed: 4 },
            estimate: EstimateModel::User(UserModelParams::capped(SimSpan::from_hours(18))),
            estimate_seed: 2,
            load: Some(1.05),
        },
    );
}
