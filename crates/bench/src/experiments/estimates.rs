//! Section 5 experiments: inaccurate user estimates.
//!
//! * Tables 5–6 — systematic overestimation (R ∈ {1, 2, 4}) under
//!   conservative and EASY backfilling;
//! * Figure 3 — conservative vs EASY with realistic ("actual") user
//!   estimates, both traces;
//! * Figure 4 — average slowdown of well vs poorly estimated jobs, under
//!   actual estimates compared against the same jobs when all estimates
//!   are accurate, conservative and EASY, CTC;
//! * Table 7 — worst-case turnaround with actual estimates, CTC.

use super::{pooled_stats, sweep, Opts};
use backfill_sim::prelude::*;
use metrics::{fnum, Table};

/// The "actual user estimates" model used throughout Section 5.2: 20 % of
/// users estimate dead-on, the rest follow the inverted f-model with a 16×
/// inflation cap, estimates snap to round wall-clock values and never
/// exceed the CTC site's 18-hour limit.
pub fn user_estimates() -> EstimateModel {
    EstimateModel::User(UserModelParams {
        exact_frac: 0.2,
        max_factor: 16.0,
        round_values: true,
        max_estimate: Some(SimSpan::from_hours(18)),
    })
}

/// The SDSC variant (36-hour cap).
pub fn user_estimates_sdsc() -> EstimateModel {
    EstimateModel::User(UserModelParams {
        max_estimate: Some(SimSpan::from_hours(36)),
        ..match user_estimates() {
            EstimateModel::User(p) => p,
            _ => unreachable!(),
        }
    })
}

/// The scheduler rows reported for the Section 5.2 artifacts: conservative
/// under both compression readings of the paper's prose, plus EASY.
/// `EXPERIMENTS.md` discusses why both conservative variants are shown.
fn section5_kinds() -> [SchedulerKind; 3] {
    [
        SchedulerKind::Conservative,
        SchedulerKind::ConservativeHeadStart,
        SchedulerKind::Easy,
    ]
}

/// Tables 5 and 6 — systematic overestimation. One table per backfilling
/// scheme; rows are priority policies, columns are R = 1, 2, 4.
pub fn tables5_6(opts: &Opts) -> Vec<Table> {
    let factors = [1.0, 2.0, 4.0];
    let mut tables = Vec::new();
    for kind in [SchedulerKind::Conservative, SchedulerKind::Easy] {
        let grid: Vec<(SchedulerKind, Policy)> = Policy::PAPER.iter().map(|&p| (kind, p)).collect();
        let title = match kind {
            SchedulerKind::Conservative => "Table 5 — Systematic overestimation: Conservative",
            _ => "Table 6 — Systematic overestimation: EASY",
        };
        let mut t = Table::new(
            format!("{title} (avg slowdown, CTC)"),
            &["policy", "R = 1", "R = 2", "R = 4"],
        );
        // One sweep per factor (estimates change the whole schedule).
        let per_factor: Vec<_> = factors
            .iter()
            .map(|&r| {
                sweep(
                    opts,
                    &opts.ctc_sources(),
                    &grid,
                    EstimateModel::systematic(r),
                )
            })
            .collect();
        for (pi, policy) in Policy::PAPER.iter().enumerate() {
            let mut row = vec![policy.to_string()];
            for results in &per_factor {
                row.push(fnum(pooled_stats(&results[pi]).overall.avg_slowdown()));
            }
            t.row(row);
        }
        tables.push(t);
    }
    tables
}

/// Figure 3 — conservative vs EASY with actual (noisy) user estimates,
/// one table per trace.
pub fn fig3(opts: &Opts) -> Vec<Table> {
    let mut grid: Vec<(SchedulerKind, Policy)> = Vec::new();
    for kind in section5_kinds() {
        for policy in Policy::PAPER {
            grid.push((kind, policy));
        }
    }
    let mut tables = Vec::new();
    for (label, sources, estimates) in [
        ("CTC", opts.ctc_sources(), user_estimates()),
        ("SDSC", opts.sdsc_sources(), user_estimates_sdsc()),
    ] {
        let results = sweep(opts, &sources, &grid, estimates);
        let mut t = Table::new(
            format!("Figure 3 — Conservative vs EASY, {label} trace, actual user estimates"),
            &["scheme", "avg slowdown", "avg turnaround (s)"],
        );
        for ((kind, policy), schedules) in grid.iter().zip(&results) {
            let stats = pooled_stats(schedules);
            t.row(vec![
                format!("{}/{}", kind.label(), policy),
                fnum(stats.overall.avg_slowdown()),
                fnum(stats.overall.avg_turnaround()),
            ]);
        }
        tables.push(t);
    }
    tables
}

/// Figure 4 — average slowdown of the well-estimated and poorly-estimated
/// job populations under actual estimates, compared with **the same jobs**
/// when every estimate is accurate. Conservative and EASY, FCFS, CTC.
///
/// Group membership (well: estimate ≤ 2× runtime) is determined by the
/// *user-estimate* trace and held fixed across both runs, exactly as the
/// paper compares "the same set of jobs".
pub fn fig4(opts: &Opts) -> Table {
    let mut t = Table::new(
        "Figure 4 — Well vs poorly estimated jobs: accurate vs actual estimates (CTC, FCFS)",
        &["scheme", "group", "accurate estimates", "actual estimates"],
    );
    for kind in section5_kinds() {
        let grid = [(kind, Policy::Fcfs)];
        let exact = sweep(opts, &opts.ctc_sources(), &grid, EstimateModel::Exact);
        let user = sweep(opts, &opts.ctc_sources(), &grid, user_estimates());

        // Membership per seed, from the user-estimate run's own jobs.
        let membership: Vec<Vec<EstimateQuality>> = user[0]
            .iter()
            .map(|s| {
                s.outcomes
                    .iter()
                    .map(|o| EstimateQuality::of(&o.job))
                    .collect()
            })
            .collect();

        for quality in [EstimateQuality::Well, EstimateQuality::Poor] {
            let pick = |si: usize, o: &JobOutcome| membership[si][o.id().0 as usize] == quality;
            let with_exact = super::subset_slowdown(&exact[0], pick);
            let with_user = super::subset_slowdown(&user[0], pick);
            t.row(vec![
                kind.label(),
                quality.label().to_string(),
                fnum(with_exact),
                fnum(with_user),
            ]);
        }
    }
    t
}

/// Table 7 — worst-case turnaround time (s) with actual user estimates, CTC.
pub fn table7(opts: &Opts) -> Table {
    let mut grid: Vec<(SchedulerKind, Policy)> = Vec::new();
    for kind in section5_kinds() {
        for policy in Policy::PAPER {
            grid.push((kind, policy));
        }
    }
    let results = sweep(opts, &opts.ctc_sources(), &grid, user_estimates());
    let mut t = Table::new(
        "Table 7 — Worst-case turnaround time (s), CTC trace, actual user estimates",
        &["scheme", "FCFS", "SJF", "XF"],
    );
    for kind in section5_kinds() {
        let mut row = vec![kind.label()];
        for policy in Policy::PAPER {
            let idx = grid
                .iter()
                .position(|&(k, p)| k == kind && p == policy)
                .expect("cell");
            row.push(fnum(pooled_stats(&results[idx]).overall.worst_turnaround()));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overestimation_helps_conservative() {
        // Table 5's headline: slowdown at R = 4 is below R = 1 under
        // conservative backfilling.
        let tables = tables5_6(&Opts::quick());
        let csv = tables[0].to_csv();
        let fcfs_row: Vec<&str> = csv
            .lines()
            .find(|l| l.starts_with("FCFS"))
            .unwrap()
            .split(',')
            .collect();
        let r1: f64 = fcfs_row[1].parse().unwrap();
        let r4: f64 = fcfs_row[3].parse().unwrap();
        assert!(
            r4 < r1,
            "R=4 ({r4}) should improve on R=1 ({r1}) under conservative"
        );
    }

    #[test]
    fn fig4_directional_shapes() {
        let t = fig4(&Opts::quick());
        let csv = t.to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| {
                l.split(',')
                    .skip(2)
                    .map(|x| x.parse::<f64>().unwrap())
                    .collect()
            })
            .collect();
        // Rows: [Cons well, Cons poor, Cons(hs) well, Cons(hs) poor,
        //        EASY well, EASY poor] — columns [accurate, actual].
        // Hole-backfilling conservative: well jobs improve with actual
        // estimates (the slack effect).
        assert!(
            rows[0][1] < rows[0][0],
            "Cons/well should improve: {rows:?}"
        );
        // Head-start conservative: poorly estimated jobs deteriorate (the
        // paper's Figure 4 direction).
        assert!(
            rows[3][1] > rows[3][0],
            "Cons(hs)/poor should worsen: {rows:?}"
        );
    }

    #[test]
    fn table7_shape() {
        let t = table7(&Opts::quick());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn fig3_has_both_traces() {
        let tables = fig3(&Opts::quick());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 9);
    }

    #[test]
    fn fig3_easy_beats_headstart_conservative() {
        // The paper's Figure 3 headline under actual estimates, which holds
        // for the head-start reading of conservative compression.
        let tables = fig3(&Opts::quick());
        let csv = tables[0].to_csv();
        let slowdown = |prefix: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap()
                .split(',')
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(slowdown("EASY/FCFS") < slowdown("Cons(hs)/FCFS"));
    }
}
