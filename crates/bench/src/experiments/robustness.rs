//! Robustness experiments: do the paper's conclusions survive input
//! perturbation?
//!
//! Two methodologies from the follow-on literature, applied to this
//! paper's headline comparison:
//!
//! * **Input shaking** (Tsafrir, Ouaknine & Feitelson) — rerun the
//!   comparison on many copies of the trace with arrivals perturbed by a
//!   few minutes; a robust conclusion holds on every copy.
//! * **Workload flurries** (Tsafrir & Feitelson) — inject a burst of
//!   near-identical jobs from one "user" and check whether the comparison
//!   flips, both with the flurry jobs counted in the metric and with them
//!   excluded.

use super::Opts;
use backfill_sim::prelude::*;
use metrics::{fnum, Table, Welford};
use workload::flurry::{inject_flurry, FlurrySpec};
use workload::shake::shake;

/// The headline cells whose robustness we probe.
fn headline_cells() -> Vec<(SchedulerKind, Policy)> {
    vec![
        (SchedulerKind::Conservative, Policy::Fcfs),
        (SchedulerKind::Easy, Policy::Fcfs),
        (SchedulerKind::Easy, Policy::Sjf),
        (SchedulerKind::Easy, Policy::XFactor),
    ]
}

fn base_trace(opts: &Opts) -> Trace {
    Scenario {
        source: TraceSource::Ctc {
            jobs: opts.jobs,
            seed: opts.seeds[0],
        },
        estimate: EstimateModel::Exact,
        estimate_seed: 1,
        load: Some(opts.load),
    }
    .materialize()
}

/// Shaking: `replicas` perturbed copies with ±`magnitude` arrival jitter.
/// Reports min / mean / max of the overall avg slowdown per scheme, and
/// whether EASY/SJF beat conservative on every single copy.
pub fn shaking(opts: &Opts, replicas: u32, magnitude: SimSpan) -> Table {
    let trace = base_trace(opts);
    let cells = headline_cells();
    let criteria = CategoryCriteria::default();

    let mut per_cell: Vec<Welford> = vec![Welford::new(); cells.len()];
    let mut sjf_always_wins = true;
    for r in 0..replicas {
        let shaken = if r == 0 {
            trace.clone()
        } else {
            shake(&trace, magnitude, r as u64)
        };
        let mut slowdowns = Vec::with_capacity(cells.len());
        for (ci, &(kind, policy)) in cells.iter().enumerate() {
            let s = simulate(&shaken, kind, policy);
            let v = s.stats(&criteria).overall.avg_slowdown();
            per_cell[ci].push(v);
            slowdowns.push(v);
        }
        // cells[0] = Cons/FCFS, cells[2] = EASY/SJF.
        if slowdowns[2] >= slowdowns[0] {
            sjf_always_wins = false;
        }
    }

    let mut t = Table::new(
        format!("Robustness — input shaking (CTC, {replicas} copies, ±{magnitude} arrival jitter)"),
        &["scheme", "min", "mean", "max", "spread %"],
    );
    for (w, &(kind, policy)) in per_cell.iter().zip(&cells) {
        let spread = if w.mean() > 0.0 {
            (w.max().unwrap_or(0.0) - w.min().unwrap_or(0.0)) / w.mean() * 100.0
        } else {
            0.0
        };
        t.row(vec![
            format!("{}/{}", kind.label(), policy),
            fnum(w.min().unwrap_or(0.0)),
            fnum(w.mean()),
            fnum(w.max().unwrap_or(0.0)),
            format!("{spread:.1}%"),
        ]);
    }
    t.row(vec![
        "EASY/SJF < Cons on every copy".into(),
        String::new(),
        String::new(),
        String::new(),
        if sjf_always_wins {
            "yes".into()
        } else {
            "NO".into()
        },
    ]);
    t
}

/// Flurries: inject a short-narrow burst of `count` jobs mid-trace and
/// compare each scheme's overall slowdown without the flurry, with it, and
/// with it present but excluded from the metric (Tsafrir's recommended
/// reporting).
pub fn flurry(opts: &Opts, count: u32) -> Table {
    let trace = base_trace(opts);
    let mid = SimTime::new(trace.first_arrival().as_secs() + trace.arrival_span().as_secs() / 2);
    let spec = FlurrySpec::short_narrow(mid, count);
    let (with_flurry, _) = inject_flurry(&trace, &spec, 99);
    let criteria = CategoryCriteria::default();

    let mut t = Table::new(
        format!("Robustness — flurry injection ({count} short-narrow jobs mid-trace, CTC)"),
        &["scheme", "clean", "with flurry", "flurry excluded"],
    );
    for (kind, policy) in headline_cells() {
        let clean = simulate(&trace, kind, policy)
            .stats(&criteria)
            .overall
            .avg_slowdown();
        let burst_schedule = simulate(&with_flurry, kind, policy);
        let all = burst_schedule.stats(&criteria).overall.avg_slowdown();
        // Excluded: average over jobs that are NOT flurry jobs (the flurry
        // spec uses width 1 + 5 min runtimes; identify by the exact shape).
        let mut w = Welford::new();
        for o in &burst_schedule.outcomes {
            let is_flurry = o.job.width == spec.width
                && o.job.estimate == spec.estimate
                && o.job.runtime.as_secs().abs_diff(spec.runtime.as_secs())
                    <= (spec.runtime.as_secs() as f64 * spec.runtime_jitter) as u64 + 1;
            if !is_flurry {
                w.push(o.bounded_slowdown());
            }
        }
        t.row(vec![
            format!("{}/{}", kind.label(), policy),
            fnum(clean),
            fnum(all),
            fnum(w.mean()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shaking_runs_and_reports_verdict() {
        let t = shaking(&Opts::quick(), 3, SimSpan::from_mins(2));
        assert_eq!(t.len(), 5);
        let csv = t.to_csv();
        assert!(csv.contains("EASY/SJF < Cons"));
    }

    #[test]
    fn flurry_runs_with_three_columns() {
        let t = flurry(&Opts::quick(), 100);
        assert_eq!(t.len(), 4);
        // Every cell parses as a number.
        for line in t.to_csv().lines().skip(1) {
            for cell in line.split(',').skip(1) {
                cell.parse::<f64>().unwrap();
            }
        }
    }

    #[test]
    fn flurry_inflates_unweighted_average() {
        // A flurry of short jobs that wait behind a busy machine inflates
        // the with-flurry average relative to the flurry-excluded one for
        // FCFS-ordered schemes (each flurry job has high bounded slowdown).
        let t = flurry(&Opts::quick(), 300);
        let csv = t.to_csv();
        let cons: Vec<f64> = csv
            .lines()
            .find(|l| l.starts_with("Cons/FCFS"))
            .unwrap()
            .split(',')
            .skip(1)
            .map(|x| x.parse().unwrap())
            .collect();
        // with-flurry vs excluded differ (the flurry jobs matter).
        assert!((cons[1] - cons[2]).abs() > 1e-9);
    }
}
