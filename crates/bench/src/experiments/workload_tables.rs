//! Tables 1–3: job categorization criteria and trace category mixes.

use super::Opts;
use backfill_sim::prelude::*;
use metrics::Table;
use workload::models::{ctc, sdsc, WorkloadModel};

/// Table 1 — the categorization criteria (static; printed for completeness).
pub fn table1() -> Table {
    let c = CategoryCriteria::default();
    let mut t = Table::new(
        "Table 1 — Job categorization criteria",
        &["", "<= 8 processors", "> 8 processors"],
    );
    let hours = c.short_max.as_secs() / 3600;
    t.row(vec![format!("<= {hours} hr"), "SN".into(), "SW".into()]);
    t.row(vec![format!("> {hours} hr"), "LN".into(), "LW".into()]);
    t
}

fn distribution_table(title: &str, model: &WorkloadModel, target: [f64; 4], opts: &Opts) -> Table {
    let mut counts = [0f64; 4];
    for &seed in &opts.seeds {
        let trace = model.generate(opts.jobs, seed);
        let d = model.criteria.distribution(&trace);
        for (acc, x) in counts.iter_mut().zip(d) {
            *acc += x;
        }
    }
    let n = opts.seeds.len() as f64;
    let mut t = Table::new(title, &["category", "generated", "paper target"]);
    for (i, cat) in Category::ALL.iter().enumerate() {
        t.row(vec![
            cat.to_string(),
            format!("{:.2}%", counts[i] / n * 100.0),
            format!("{:.2}%", target[i] * 100.0),
        ]);
    }
    t
}

/// Table 2 — CTC category distribution (generated vs the paper's target).
pub fn table2(opts: &Opts) -> Table {
    distribution_table(
        "Table 2 — Job distribution, CTC trace",
        &ctc(),
        workload::models::ctc::CTC_CATEGORY_MIX,
        opts,
    )
}

/// Table 3 — SDSC category distribution.
pub fn table3(opts: &Opts) -> Table {
    distribution_table(
        "Table 3 — Job distribution, SDSC trace",
        &sdsc(),
        workload::models::sdsc::SDSC_CATEGORY_MIX,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_static() {
        let t = table1();
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("SN"));
        assert!(t.render().contains("LW"));
    }

    #[test]
    fn table2_matches_target_within_band() {
        let t = table2(&Opts::quick());
        let csv = t.to_csv();
        // Every row carries generated and target; spot-check SN row exists.
        assert!(csv.contains("SN"));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn table3_has_four_rows() {
        assert_eq!(table3(&Opts::quick()).len(), 4);
    }
}
