//! Section 4 experiments: accurate user estimates.
//!
//! * Figure 1 — overall average slowdown and turnaround, conservative vs
//!   EASY under FCFS / SJF / XFactor, CTC and SDSC;
//! * Figure 2 — category-wise % change in slowdown (EASY relative to
//!   conservative), per priority policy, CTC;
//! * Table 4 — worst-case turnaround times, CTC;
//! * the Section 4.1 priority-equivalence check for conservative
//!   backfilling.

use super::{paper_grid, pooled_stats, sweep, Opts};
use backfill_sim::prelude::*;
use metrics::{fnum, fpct, percent_change, Table};

/// Figure 1 — one table per trace: rows are scheduler × policy, columns are
/// the pooled average bounded slowdown and average turnaround.
pub fn fig1(opts: &Opts) -> Vec<Table> {
    let grid = paper_grid();
    let mut tables = Vec::new();
    for (label, sources) in [("CTC", opts.ctc_sources()), ("SDSC", opts.sdsc_sources())] {
        let results = sweep(opts, &sources, &grid, EstimateModel::Exact);
        let mut t = Table::new(
            format!("Figure 1 — Conservative vs EASY, {label} trace, accurate estimates"),
            &[
                "scheme",
                "avg slowdown",
                "avg turnaround (s)",
                "utilization",
            ],
        );
        for ((kind, policy), schedules) in grid.iter().zip(&results) {
            let stats = pooled_stats(schedules);
            t.row(vec![
                format!("{}/{}", kind.label(), policy),
                fnum(stats.overall.avg_slowdown()),
                fnum(stats.overall.avg_turnaround()),
                format!("{:.3}", stats.utilization),
            ]);
        }
        tables.push(t);
    }
    tables
}

/// Figure 2 — category-wise % change of the average slowdown under EASY
/// relative to conservative, per priority policy. The paper prints the CTC
/// panel; its conclusion claims the category-wise trends are
/// **trace-independent**, so we regenerate the same panel for SDSC too.
/// Negative numbers mean EASY improved that category.
pub fn fig2(opts: &Opts) -> Vec<Table> {
    let grid = paper_grid();
    let mut tables = Vec::new();
    for (label, sources) in [("CTC", opts.ctc_sources()), ("SDSC", opts.sdsc_sources())] {
        let results = sweep(opts, &sources, &grid, EstimateModel::Exact);
        let mut t = Table::new(
            format!(
                "Figure 2 — % change in slowdown, EASY vs conservative, per category ({label})"
            ),
            &["policy", "SN", "SW", "LN", "LW", "Overall"],
        );
        for policy in Policy::PAPER {
            let cons_idx = grid
                .iter()
                .position(|&(k, p)| k == SchedulerKind::Conservative && p == policy)
                .expect("grid contains cell");
            let easy_idx = grid
                .iter()
                .position(|&(k, p)| k == SchedulerKind::Easy && p == policy)
                .expect("grid contains cell");
            let cons = pooled_stats(&results[cons_idx]);
            let easy = pooled_stats(&results[easy_idx]);
            let mut row = vec![policy.to_string()];
            for cat in Category::ALL {
                row.push(fpct(percent_change(
                    easy.category(cat).avg_slowdown(),
                    cons.category(cat).avg_slowdown(),
                )));
            }
            row.push(fpct(percent_change(
                easy.overall.avg_slowdown(),
                cons.overall.avg_slowdown(),
            )));
            t.row(row);
        }
        tables.push(t);
    }
    tables
}

/// Table 4 — worst-case turnaround time (seconds), CTC, accurate estimates.
pub fn table4(opts: &Opts) -> Table {
    let grid = paper_grid();
    let results = sweep(opts, &opts.ctc_sources(), &grid, EstimateModel::Exact);
    let mut t = Table::new(
        "Table 4 — Worst-case turnaround time (s), CTC trace, accurate estimates",
        &["scheme", "FCFS", "SJF", "XF"],
    );
    for kind in [SchedulerKind::Conservative, SchedulerKind::Easy] {
        let mut row = vec![kind.label()];
        for policy in Policy::PAPER {
            let idx = grid
                .iter()
                .position(|&(k, p)| k == kind && p == policy)
                .expect("cell");
            let stats = pooled_stats(&results[idx]);
            row.push(fnum(stats.overall.worst_turnaround()));
        }
        t.row(row);
    }
    t
}

/// Section 3's methodological claim: "Similar trends were observed under
/// both loads. The trends are pronounced under high load." One table with
/// the paper grid at normal (ρ ≈ 0.6) and high (opts.load) load side by
/// side, so the claim is checkable at a glance.
pub fn normal_vs_high_load(opts: &Opts) -> Table {
    let grid = paper_grid();
    let normal = Opts {
        load: 0.6,
        ..opts.clone()
    };
    let res_normal = sweep(&normal, &normal.ctc_sources(), &grid, EstimateModel::Exact);
    let res_high = sweep(opts, &opts.ctc_sources(), &grid, EstimateModel::Exact);
    let mut t = Table::new(
        format!(
            "Section 3 — Normal (rho 0.6) vs high (rho {}) load, CTC, avg slowdown",
            opts.load
        ),
        &["scheme", "normal", "high", "high/normal"],
    );
    for (i, (kind, policy)) in grid.iter().enumerate() {
        let n = pooled_stats(&res_normal[i]).overall.avg_slowdown();
        let h = pooled_stats(&res_high[i]).overall.avg_slowdown();
        t.row(vec![
            format!("{}/{}", kind.label(), policy),
            fnum(n),
            fnum(h),
            format!("{:.1}x", if n > 0.0 { h / n } else { 0.0 }),
        ]);
    }
    t
}

/// Section 4.1 — under conservative backfilling with accurate estimates,
/// all priority policies produce the *identical* schedule. Verified by
/// fingerprint equality on every seed of both traces.
pub fn equivalence(opts: &Opts) -> Table {
    let grid: Vec<(SchedulerKind, Policy)> = Policy::PAPER
        .iter()
        .map(|&p| (SchedulerKind::Conservative, p))
        .collect();
    let mut t = Table::new(
        "Section 4.1 — Priority equivalence under conservative backfilling (accurate estimates)",
        &["trace", "seed", "FCFS = SJF = XF", "fingerprint"],
    );
    for (label, sources) in [("CTC", opts.ctc_sources()), ("SDSC", opts.sdsc_sources())] {
        let results = sweep(opts, &sources, &grid, EstimateModel::Exact);
        for (si, &seed) in opts.seeds.iter().enumerate() {
            let fps: Vec<u64> = results.iter().map(|cell| cell[si].fingerprint()).collect();
            let all_equal = fps.windows(2).all(|w| w[0] == w[1]);
            t.row(vec![
                label.to_string(),
                seed.to_string(),
                if all_equal {
                    "yes".into()
                } else {
                    "NO — VIOLATION".into()
                },
                format!("{:016x}", fps[0]),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_headline_ordering() {
        // EASY/SJF and EASY/XF must beat conservative on average slowdown.
        let opts = Opts::quick();
        let grid = paper_grid();
        let results = sweep(&opts, &opts.ctc_sources(), &grid, EstimateModel::Exact);
        let get = |kind, policy| {
            let idx = grid
                .iter()
                .position(|&(k, p)| k == kind && p == policy)
                .unwrap();
            pooled_stats(&results[idx]).overall.avg_slowdown()
        };
        let cons = get(SchedulerKind::Conservative, Policy::Fcfs);
        assert!(get(SchedulerKind::Easy, Policy::Sjf) < cons);
        assert!(get(SchedulerKind::Easy, Policy::XFactor) < cons);
    }

    #[test]
    fn trends_agree_across_loads() {
        // The §3 claim: the EASY/SJF-beats-conservative ordering holds at
        // both loads, and the gap is larger at high load.
        let t = normal_vs_high_load(&Opts::quick());
        let csv = t.to_csv();
        let get = |prefix: &str, col: usize| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap()
                .split(',')
                .nth(col)
                .unwrap()
                .parse()
                .unwrap()
        };
        for col in [1, 2] {
            assert!(
                get("EASY/SJF", col) < get("Cons/FCFS", col),
                "ordering must hold at both loads (col {col})"
            );
        }
        let gap_normal = get("Cons/FCFS", 1) - get("EASY/SJF", 1);
        let gap_high = get("Cons/FCFS", 2) - get("EASY/SJF", 2);
        assert!(
            gap_high > gap_normal,
            "trend should be pronounced under high load"
        );
    }

    #[test]
    fn equivalence_holds_on_quick_runs() {
        let t = equivalence(&Opts::quick());
        assert!(!t.render().contains("VIOLATION"));
    }

    #[test]
    fn table4_has_two_rows() {
        let t = table4(&Opts::quick());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fig2_rows_per_policy_and_both_traces() {
        let tables = fig2(&Opts::quick());
        assert_eq!(tables.len(), 2, "CTC and SDSC panels");
        assert_eq!(tables[0].len(), 3);
        assert_eq!(tables[1].len(), 3);
    }

    #[test]
    fn fig2_ln_trend_is_trace_independent() {
        // The conclusion's claim: the LN category benefits from EASY on
        // *both* traces (under SJF, where the effect is strongest).
        let tables = fig2(&Opts::quick());
        for t in &tables {
            let csv = t.to_csv();
            let sjf: Vec<&str> = csv
                .lines()
                .find(|l| l.starts_with("SJF"))
                .unwrap()
                .split(',')
                .collect();
            let ln: f64 = sjf[3].trim_end_matches('%').parse().unwrap();
            assert!(ln < 0.0, "LN should improve under EASY/SJF: {ln}%");
        }
    }
}
