//! The experiment harness: one function per table/figure of the paper.
//!
//! Each experiment regenerates a paper artifact as one or more [`Table`]s
//! (text + CSV). The mapping to the paper, and the calibration notes, live
//! in `DESIGN.md` (system inventory) and `EXPERIMENTS.md` (paper-vs-
//! measured record).
//!
//! All experiments are deterministic in [`Opts`]: same options, same bytes.
//! Multi-seed replication is built in — every reported number is averaged
//! over `opts.seeds` independent synthetic traces, so no conclusion hangs
//! on one lucky workload.

pub mod ablations;
pub mod accurate;
pub mod estimates;
pub mod robustness;
pub mod workload_tables;

use backfill_sim::prelude::*;
use std::num::NonZeroUsize;

/// Options shared by all experiments.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Jobs per synthetic trace.
    pub jobs: usize,
    /// Independent trace seeds; results are averaged across them.
    pub seeds: Vec<u64>,
    /// Offered load for the paper's "high load" condition.
    pub load: f64,
    /// Worker threads (`None` = all cores).
    pub threads: Option<NonZeroUsize>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            jobs: 20_000,
            seeds: vec![42, 1337, 2002],
            load: 0.9,
            threads: None,
        }
    }
}

impl Opts {
    /// A reduced configuration for fast test runs.
    pub fn quick() -> Self {
        Opts {
            jobs: 2_000,
            seeds: vec![42],
            load: 0.9,
            threads: None,
        }
    }

    /// The CTC trace sources, one per seed.
    pub fn ctc_sources(&self) -> Vec<TraceSource> {
        self.seeds
            .iter()
            .map(|&seed| TraceSource::Ctc {
                jobs: self.jobs,
                seed,
            })
            .collect()
    }

    /// The SDSC trace sources, one per seed.
    pub fn sdsc_sources(&self) -> Vec<TraceSource> {
        self.seeds
            .iter()
            .map(|&seed| TraceSource::Sdsc {
                jobs: self.jobs,
                seed,
            })
            .collect()
    }
}

/// The scheduler × policy grid the paper's figures compare.
pub fn paper_grid() -> Vec<(SchedulerKind, Policy)> {
    let mut grid = Vec::new();
    for kind in [SchedulerKind::Conservative, SchedulerKind::Easy] {
        for policy in Policy::PAPER {
            grid.push((kind, policy));
        }
    }
    grid
}

/// Run the full (sources × grid) sweep for one estimate model and collect,
/// per grid cell, the per-seed schedules. Returned in grid order:
/// `result[cell][seed]`.
pub fn sweep(
    opts: &Opts,
    sources: &[TraceSource],
    grid: &[(SchedulerKind, Policy)],
    estimate: EstimateModel,
) -> Vec<Vec<Schedule>> {
    let mut configs = Vec::new();
    for &(kind, policy) in grid {
        for &source in sources {
            configs.push(RunConfig {
                scenario: Scenario {
                    source,
                    estimate,
                    estimate_seed: estimate_seed_for(source),
                    load: Some(opts.load),
                },
                kind,
                policy,
            });
        }
    }
    let results = run_all(&configs, opts.threads);
    let mut out = Vec::with_capacity(grid.len());
    let per_cell = sources.len();
    for (i, _) in grid.iter().enumerate() {
        let schedules = results[i * per_cell..(i + 1) * per_cell]
            .iter()
            .map(|r| {
                r.schedule.validate().expect("schedule failed audit");
                r.schedule.clone()
            })
            .collect();
        out.push(schedules);
    }
    out
}

/// Estimate-model seed derived from the trace source so that the same
/// trace always receives the same noisy estimates, while different seeds
/// get independent noise.
fn estimate_seed_for(source: TraceSource) -> u64 {
    match source {
        TraceSource::Ctc { seed, .. } => seed ^ 0xC7C0,
        TraceSource::Sdsc { seed, .. } => seed ^ 0x5D5C,
    }
}

/// Merge per-seed schedules into one pooled [`ScheduleStats`].
pub fn pooled_stats(schedules: &[Schedule]) -> ScheduleStats {
    let criteria = CategoryCriteria::default();
    let mut iter = schedules.iter();
    let first = iter.next().expect("at least one schedule");
    let mut acc = first.stats(&criteria);
    for s in iter {
        let stats = s.stats(&criteria);
        acc.overall.merge(&stats.overall);
        for c in 0..4 {
            acc.by_category[c].merge(&stats.by_category[c]);
        }
        for q in 0..2 {
            acc.by_quality[q].merge(&stats.by_quality[q]);
        }
        // Utilization/makespan: keep the mean across seeds.
        acc.utilization = (acc.utilization + stats.utilization) / 2.0;
        acc.makespan = acc.makespan.max(stats.makespan);
    }
    acc
}

/// Mean bounded slowdown of an id-subset of jobs, pooled across seeds.
/// `pick(seed_index, outcome)` selects membership.
pub fn subset_slowdown(
    schedules: &[Schedule],
    mut pick: impl FnMut(usize, &JobOutcome) -> bool,
) -> f64 {
    let mut acc = metrics::Welford::new();
    for (si, s) in schedules.iter().enumerate() {
        for o in &s.outcomes {
            if pick(si, o) {
                acc.push(o.bounded_slowdown());
            }
        }
    }
    acc.mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_paper_cells() {
        let g = paper_grid();
        assert_eq!(g.len(), 6);
        assert!(g.contains(&(SchedulerKind::Easy, Policy::XFactor)));
        assert!(g.contains(&(SchedulerKind::Conservative, Policy::Fcfs)));
    }

    #[test]
    fn sweep_shape_and_determinism() {
        let opts = Opts {
            jobs: 300,
            seeds: vec![1, 2],
            load: 0.9,
            threads: None,
        };
        let grid = [(SchedulerKind::Easy, Policy::Fcfs)];
        let a = sweep(&opts, &opts.ctc_sources(), &grid, EstimateModel::Exact);
        let b = sweep(&opts, &opts.ctc_sources(), &grid, EstimateModel::Exact);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].len(), 2);
        assert_eq!(a[0][0].fingerprint(), b[0][0].fingerprint());
        assert_ne!(
            a[0][0].fingerprint(),
            a[0][1].fingerprint(),
            "seeds should differ"
        );
    }

    #[test]
    fn pooled_stats_counts_all_seeds() {
        let opts = Opts {
            jobs: 200,
            seeds: vec![1, 2],
            load: 0.9,
            threads: None,
        };
        let grid = [(SchedulerKind::Easy, Policy::Fcfs)];
        let res = sweep(&opts, &opts.ctc_sources(), &grid, EstimateModel::Exact);
        let pooled = pooled_stats(&res[0]);
        assert_eq!(pooled.overall.count(), 400);
    }

    #[test]
    fn subset_slowdown_of_everything_matches_overall() {
        let opts = Opts {
            jobs: 200,
            seeds: vec![7],
            load: 0.9,
            threads: None,
        };
        let grid = [(SchedulerKind::Conservative, Policy::Fcfs)];
        let res = sweep(&opts, &opts.ctc_sources(), &grid, EstimateModel::Exact);
        let all = subset_slowdown(&res[0], |_, _| true);
        let pooled = pooled_stats(&res[0]);
        assert!((all - pooled.overall.avg_slowdown()).abs() < 1e-9);
    }
}
