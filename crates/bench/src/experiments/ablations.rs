//! Ablations and extensions beyond the paper's printed artifacts.
//!
//! * **Load sweep** — Section 3 notes the trends are "pronounced under high
//!   load"; this sweep quantifies that by varying ρ.
//! * **Selective-backfilling threshold sweep** — Section 6's future-work
//!   strategy, instantiated: how the xfactor threshold trades average
//!   slowdown against worst-case turnaround.
//! * **Extra priority policies** — LJF and Widest-First, sanity baselines
//!   showing the SJF/XF gains are not artifacts of re-sorting per event.
//! * **No-backfill baseline** — what backfilling buys at all.

use super::{pooled_stats, sweep, Opts};
use backfill_sim::prelude::*;
use metrics::{capacity_report, fairness, fnum, Table};

/// Load sweep: average slowdown of the main schemes as offered load rises.
pub fn load_sweep(opts: &Opts, loads: &[f64]) -> Table {
    let cells: Vec<(SchedulerKind, Policy)> = vec![
        (SchedulerKind::Conservative, Policy::Fcfs),
        (SchedulerKind::Easy, Policy::Fcfs),
        (SchedulerKind::Easy, Policy::Sjf),
    ];
    let mut t = Table::new(
        "Ablation — Average slowdown vs offered load (CTC, accurate estimates)",
        &["load", "Cons/FCFS", "EASY/FCFS", "EASY/SJF"],
    );
    for &rho in loads {
        let o = Opts {
            load: rho,
            ..opts.clone()
        };
        let results = sweep(&o, &o.ctc_sources(), &cells, EstimateModel::Exact);
        let mut row = vec![format!("{rho:.2}")];
        for cell in results {
            row.push(fnum(pooled_stats(&cell).overall.avg_slowdown()));
        }
        t.row(row);
    }
    t
}

/// Selective-backfilling threshold sweep: slowdown and worst-case
/// turnaround as the reservation threshold varies, bracketed by
/// conservative (reserve everyone) and EASY (reserve the head only).
pub fn selective_sweep(opts: &Opts, thresholds: &[f64]) -> Table {
    let mut cells: Vec<(SchedulerKind, Policy)> = vec![
        (SchedulerKind::Conservative, Policy::Fcfs),
        (SchedulerKind::Easy, Policy::Fcfs),
    ];
    for &tau in thresholds {
        cells.push((SchedulerKind::Selective { threshold: tau }, Policy::Fcfs));
    }
    let results = sweep(
        opts,
        &opts.ctc_sources(),
        &cells,
        user_estimates_for_sweep(),
    );
    let mut t = Table::new(
        "Extension — Selective backfilling threshold sweep (CTC, actual estimates, FCFS)",
        &["scheme", "avg slowdown", "worst turnaround (s)"],
    );
    for ((kind, _), cell) in cells.iter().zip(&results) {
        let stats = pooled_stats(cell);
        t.row(vec![
            kind.label(),
            fnum(stats.overall.avg_slowdown()),
            fnum(stats.overall.worst_turnaround()),
        ]);
    }
    t
}

fn user_estimates_for_sweep() -> EstimateModel {
    super::estimates::user_estimates()
}

/// Reservation-depth sweep — the EASY ↔ conservative continuum (Chiang et
/// al.): protect the top k queued jobs. Depth 1 is EASY; large depths
/// approach conservative's protection with dynamic re-planning.
pub fn depth_sweep(opts: &Opts, depths: &[usize]) -> Table {
    let mut cells: Vec<(SchedulerKind, Policy)> = vec![
        (SchedulerKind::Easy, Policy::Fcfs),
        (SchedulerKind::Conservative, Policy::Fcfs),
    ];
    for &d in depths {
        cells.push((SchedulerKind::Depth { depth: d }, Policy::Fcfs));
    }
    let results = sweep(
        opts,
        &opts.ctc_sources(),
        &cells,
        super::estimates::user_estimates(),
    );
    let mut t = Table::new(
        "Extension — Reservation-depth sweep (CTC, actual estimates, FCFS)",
        &["scheme", "avg slowdown", "worst turnaround (s)"],
    );
    for ((kind, _), cell) in cells.iter().zip(&results) {
        let stats = pooled_stats(cell);
        t.row(vec![
            kind.label(),
            fnum(stats.overall.avg_slowdown()),
            fnum(stats.overall.worst_turnaround()),
        ]);
    }
    t
}

/// Selective-preemption sweep — the authors' companion strategy (their
/// reference \[6\]): suspend running jobs once the queue head's expansion
/// factor crosses a threshold. Reports the average/worst trade-off plus
/// how many jobs were suspended, bracketed by EASY (no preemption).
pub fn preemption_sweep(opts: &Opts, thresholds: &[f64]) -> Table {
    let mut cells: Vec<(SchedulerKind, Policy)> = vec![(SchedulerKind::Easy, Policy::Fcfs)];
    for &tau in thresholds {
        cells.push((SchedulerKind::Preemptive { threshold: tau }, Policy::Fcfs));
    }
    let results = sweep(
        opts,
        &opts.ctc_sources(),
        &cells,
        super::estimates::user_estimates(),
    );
    let mut t = Table::new(
        "Extension — Selective preemption sweep (CTC, actual estimates, FCFS)",
        &[
            "scheme",
            "avg slowdown",
            "worst turnaround (s)",
            "jobs suspended",
        ],
    );
    for ((kind, _), cell) in cells.iter().zip(&results) {
        let stats = pooled_stats(cell);
        let suspended: usize = cell
            .iter()
            .map(|s| s.outcomes.iter().filter(|o| o.was_preempted()).count())
            .sum();
        t.row(vec![
            kind.label(),
            fnum(stats.overall.avg_slowdown()),
            fnum(stats.overall.worst_turnaround()),
            suspended.to_string(),
        ]);
    }
    t
}

/// Fairness and capacity ablation — quantifying Tables 4/7's starvation
/// story with proper metrics (the authors' own follow-up research line):
/// Gini coefficient of slowdowns, max-stretch, overtake rate, and
/// Feitelson's loss-of-capacity κ (idle processors while jobs wait).
pub fn fairness_ablation(opts: &Opts) -> Table {
    let cells: Vec<(SchedulerKind, Policy)> = vec![
        (SchedulerKind::NoBackfill, Policy::Fcfs),
        (SchedulerKind::Conservative, Policy::Fcfs),
        (SchedulerKind::Easy, Policy::Fcfs),
        (SchedulerKind::Easy, Policy::Sjf),
        (SchedulerKind::Easy, Policy::XFactor),
        (SchedulerKind::Selective { threshold: 2.0 }, Policy::Fcfs),
        (SchedulerKind::Slack { slack_factor: 2.0 }, Policy::Fcfs),
    ];
    let results = sweep(opts, &opts.ctc_sources(), &cells, EstimateModel::Exact);
    let mut t = Table::new(
        "Ablation — Fairness and capacity (CTC, accurate estimates)",
        &[
            "scheme",
            "slowdown",
            "gini",
            "max stretch",
            "overtake",
            "lost capacity",
        ],
    );
    for ((kind, policy), cell) in cells.iter().zip(&results) {
        // Fairness numbers pooled by averaging per-seed reports.
        let n = cell.len() as f64;
        let mut gini = 0.0;
        let mut stretch: f64 = 0.0;
        let mut overtake = 0.0;
        let mut lost = 0.0;
        for s in cell {
            let f = fairness(&s.outcomes);
            gini += f.slowdown_gini / n;
            stretch = stretch.max(f.max_stretch);
            overtake += f.overtake_rate / n;
            lost += capacity_report(&s.outcomes, s.nodes).lost / n;
        }
        let stats = pooled_stats(cell);
        t.row(vec![
            format!("{}/{}", kind.label(), policy),
            fnum(stats.overall.avg_slowdown()),
            format!("{gini:.3}"),
            fnum(stretch),
            format!("{overtake:.3}"),
            format!("{lost:.3}"),
        ]);
    }
    t
}

/// Slack-based backfilling sweep (Talby & Feitelson — the paper's
/// reference \[13\]): growing the promise slack trades guarantee tightness
/// for backfill freedom, interpolating conservative → EASY-like behaviour
/// with a hard per-job delay bound.
pub fn slack_sweep(opts: &Opts, factors: &[f64]) -> Table {
    let mut cells: Vec<(SchedulerKind, Policy)> = vec![
        (SchedulerKind::Conservative, Policy::Fcfs),
        (SchedulerKind::Easy, Policy::Fcfs),
    ];
    for &f in factors {
        cells.push((SchedulerKind::Slack { slack_factor: f }, Policy::Fcfs));
    }
    let results = sweep(
        opts,
        &opts.ctc_sources(),
        &cells,
        super::estimates::user_estimates(),
    );
    let mut t = Table::new(
        "Extension — Slack-based backfilling sweep (CTC, actual estimates, FCFS)",
        &["scheme", "avg slowdown", "worst turnaround (s)"],
    );
    for ((kind, _), cell) in cells.iter().zip(&results) {
        let stats = pooled_stats(cell);
        t.row(vec![
            kind.label(),
            fnum(stats.overall.avg_slowdown()),
            fnum(stats.overall.worst_turnaround()),
        ]);
    }
    t
}

/// Compression ablation — the design choice the paper's prose leaves
/// underdetermined: what happens to queued reservations when a job
/// completes early. Four readings of conservative backfilling are compared
/// under three estimate regimes. This single knob decides which of the
/// paper's Section 5 claims reproduce (see `EXPERIMENTS.md`).
pub fn compression_ablation(opts: &Opts) -> Table {
    let kinds = [
        SchedulerKind::Conservative,
        SchedulerKind::ConservativeReanchor,
        SchedulerKind::ConservativeHeadStart,
        SchedulerKind::ConservativeNoCompress,
        SchedulerKind::Easy,
    ];
    let cells: Vec<(SchedulerKind, Policy)> = kinds.iter().map(|&k| (k, Policy::Fcfs)).collect();
    let regimes = [
        ("accurate", EstimateModel::Exact),
        ("R = 4", EstimateModel::systematic(4.0)),
        ("user", super::estimates::user_estimates()),
    ];
    let mut t = Table::new(
        "Ablation — Conservative compression policy × estimate regime (avg slowdown, CTC, FCFS)",
        &["scheme", "accurate", "R = 4", "user"],
    );
    let per_regime: Vec<_> = regimes
        .iter()
        .map(|&(_, est)| sweep(opts, &opts.ctc_sources(), &cells, est))
        .collect();
    for (ki, kind) in kinds.iter().enumerate() {
        let mut row = vec![kind.label()];
        for results in &per_regime {
            row.push(fnum(pooled_stats(&results[ki]).overall.avg_slowdown()));
        }
        t.row(row);
    }
    t
}

/// Extra priority policies under EASY, including the no-backfill baseline:
/// how much of the win is backfilling, and how much is ordering.
pub fn policy_ablation(opts: &Opts) -> Table {
    let cells: Vec<(SchedulerKind, Policy)> = vec![
        (SchedulerKind::NoBackfill, Policy::Fcfs),
        (SchedulerKind::Easy, Policy::Fcfs),
        (SchedulerKind::Easy, Policy::Sjf),
        (SchedulerKind::Easy, Policy::XFactor),
        (SchedulerKind::Easy, Policy::Ljf),
        (SchedulerKind::Easy, Policy::WidestFirst),
    ];
    let results = sweep(opts, &opts.ctc_sources(), &cells, EstimateModel::Exact);
    let mut t = Table::new(
        "Ablation — Priority policies under EASY + no-backfill baseline (CTC)",
        &[
            "scheme",
            "avg slowdown",
            "avg turnaround (s)",
            "utilization",
        ],
    );
    for ((kind, policy), cell) in cells.iter().zip(&results) {
        let stats = pooled_stats(cell);
        t.row(vec![
            format!("{}/{}", kind.label(), policy),
            fnum(stats.overall.avg_slowdown()),
            fnum(stats.overall.avg_turnaround()),
            format!("{:.3}", stats.utilization),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_load_hurts() {
        let t = load_sweep(&Opts::quick(), &[0.7, 1.0]);
        let rows: Vec<Vec<f64>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').skip(1).map(|x| x.parse().unwrap()).collect())
            .collect();
        // Conservative/FCFS slowdown should rise with load.
        assert!(
            rows[1][0] > rows[0][0],
            "load 1.0 should beat 0.7 in slowdown"
        );
    }

    #[test]
    fn no_backfill_is_worst() {
        let t = policy_ablation(&Opts::quick());
        let slowdowns: Vec<f64> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        let nobf = slowdowns[0];
        assert!(
            slowdowns[1] < nobf && slowdowns[2] < nobf,
            "backfilling must beat the no-backfill baseline: {slowdowns:?}"
        );
    }

    #[test]
    fn selective_sweep_runs() {
        let t = selective_sweep(&Opts::quick(), &[2.0]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn preemption_sweep_runs_and_suspends() {
        let t = preemption_sweep(&Opts::quick(), &[2.0]);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        let suspended: usize = csv
            .lines()
            .find(|l| l.starts_with("Preempt"))
            .unwrap()
            .split(',')
            .nth(3)
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            suspended > 0,
            "threshold 2 at high load should trigger suspensions"
        );
        // EASY row reports zero suspensions.
        let easy: usize = csv
            .lines()
            .find(|l| l.starts_with("EASY"))
            .unwrap()
            .split(',')
            .nth(3)
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(easy, 0);
    }

    #[test]
    fn depth_sweep_runs() {
        let t = depth_sweep(&Opts::quick(), &[1, 4]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn slack_sweep_runs() {
        let t = slack_sweep(&Opts::quick(), &[0.0, 2.0]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn fairness_ablation_runs() {
        let t = fairness_ablation(&Opts::quick());
        assert_eq!(t.len(), 7);
        // No-backfill FCFS never overtakes; SJF-ordered EASY overtakes a lot.
        let csv = t.to_csv();
        let overtake = |prefix: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap()
                .split(',')
                .nth(4)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(overtake("EASY/SJF") > overtake("NoBF/FCFS"));
    }

    #[test]
    fn compression_ablation_has_all_variants() {
        let t = compression_ablation(&Opts::quick());
        assert_eq!(t.len(), 5);
        let csv = t.to_csv();
        assert!(csv.contains("Cons(hs)"));
        assert!(csv.contains("Cons(no)"));
    }
}
