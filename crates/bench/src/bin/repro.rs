//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT...] [--quick] [--jobs N] [--seeds a,b,c] [--load RHO] [--csv DIR]
//!       [--log-level SPEC] [--log-json]
//! ```
//!
//! With no experiment names, everything runs (in paper order). `--quick`
//! uses a small configuration for smoke runs. `--csv DIR` additionally
//! writes each table as a CSV file into `DIR`. `--log-level` takes the
//! `BFSIM_LOG` filter grammar and wins over the environment; per-
//! experiment timing lines are logged at `info`.
//!
//! Experiments: `table1 table2 table3 fig1 fig2 table4 equiv table5
//! table6 fig3 fig4 table7 load-sweep selective compression policies`.

use bench::experiments::{ablations, accurate, estimates, robustness, workload_tables, Opts};
use metrics::Table;

struct Args {
    names: Vec<String>,
    opts: Opts,
    csv_dir: Option<String>,
}

fn parse_args(args: &[String]) -> Args {
    let mut names = Vec::new();
    let mut opts = Opts::default();
    let mut csv_dir = None;
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                opts = Opts {
                    threads: opts.threads,
                    ..Opts::quick()
                }
            }
            "--jobs" => {
                opts.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a number"));
            }
            "--seeds" => {
                let list = it.next().unwrap_or_else(|| die("--seeds needs a list"));
                opts.seeds = list
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| die("bad seed list")))
                    .collect();
            }
            "--load" => {
                opts.load = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--load needs a number"));
            }
            "--csv" => csv_dir = Some(it.next().unwrap_or_else(|| die("--csv needs a dir"))),
            // Consumed by init_logging before parsing; skip here.
            "--log-level" => {
                let _ = it
                    .next()
                    .unwrap_or_else(|| die("--log-level needs a value"));
            }
            "--log-json" => {}
            "--help" | "-h" => {
                println!(
                    "usage: repro [EXPERIMENT...] [--quick] [--jobs N] [--seeds a,b,c] \
                     [--load RHO] [--csv DIR] [--log-level SPEC] [--log-json]"
                );
                println!("experiments: {}", ALL.join(" "));
                std::process::exit(0);
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => names.push(other.to_string()),
        }
    }
    Args {
        names,
        opts,
        csv_dir,
    }
}

fn die(msg: &str) -> ! {
    obs::error!(target: "repro", "{msg}");
    std::process::exit(2);
}

/// Install the global logger before flag parsing so `die` goes through
/// it. Mirrors `bfsim`'s logging flags.
fn init_logging(args: &[String]) {
    let mut spec: Option<String> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--log-level" => spec = it.next().cloned(),
            "--log-json" => json = true,
            _ => {}
        }
    }
    let filter = match &spec {
        Some(spec) => obs::log::Filter::parse(spec).unwrap_or_else(|e| {
            eprintln!("repro: bad --log-level: {e}");
            std::process::exit(2);
        }),
        None => match std::env::var("BFSIM_LOG") {
            Ok(env_spec) if !env_spec.trim().is_empty() => obs::log::Filter::parse(&env_spec)
                .unwrap_or_else(|_| obs::log::Filter::uniform(obs::log::Level::Warn)),
            _ => obs::log::Filter::uniform(obs::log::Level::Error),
        },
    };
    let _ = obs::log::init(obs::log::LogConfig {
        filter,
        json,
        sink: obs::log::Sink::Stderr,
        elapsed: false,
    });
}

const ALL: [&str; 23] = [
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "table4",
    "equiv",
    "table5",
    "table6",
    "fig3",
    "fig4",
    "table7",
    "normal-load",
    "load-sweep",
    "selective",
    "slack",
    "depth",
    "compression",
    "policies",
    "fairness",
    "shaking",
    "flurry",
    "preemption",
];

fn run(name: &str, opts: &Opts) -> Vec<Table> {
    match name {
        "table1" => vec![workload_tables::table1()],
        "table2" => vec![workload_tables::table2(opts)],
        "table3" => vec![workload_tables::table3(opts)],
        "fig1" => accurate::fig1(opts),
        "fig2" => accurate::fig2(opts),
        "table4" => vec![accurate::table4(opts)],
        "equiv" => vec![accurate::equivalence(opts)],
        "table5" => vec![estimates::tables5_6(opts).remove(0)],
        "table6" => {
            let mut v = estimates::tables5_6(opts);
            vec![v.remove(1)]
        }
        "fig3" => estimates::fig3(opts),
        "fig4" => vec![estimates::fig4(opts)],
        "table7" => vec![estimates::table7(opts)],
        "normal-load" => vec![accurate::normal_vs_high_load(opts)],
        "load-sweep" => {
            vec![ablations::load_sweep(opts, &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0])]
        }
        "selective" => vec![ablations::selective_sweep(
            opts,
            &[1.5, 2.0, 3.0, 5.0, 10.0],
        )],
        "slack" => vec![ablations::slack_sweep(
            opts,
            &[0.0, 0.5, 1.0, 2.0, 5.0, 10.0],
        )],
        "depth" => vec![ablations::depth_sweep(opts, &[1, 2, 4, 8, 16, 64])],
        "preemption" => vec![ablations::preemption_sweep(opts, &[1.5, 2.0, 5.0, 20.0])],
        "compression" => vec![ablations::compression_ablation(opts)],
        "policies" => vec![ablations::policy_ablation(opts)],
        "fairness" => vec![ablations::fairness_ablation(opts)],
        "shaking" => {
            vec![robustness::shaking(
                opts,
                10,
                simcore::SimSpan::from_mins(3),
            )]
        }
        "flurry" => vec![robustness::flurry(opts, 500)],
        other => die(&format!("unknown experiment {other:?} (try --help)")),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    init_logging(&argv);
    let args = parse_args(&argv);
    let names: Vec<String> = if args.names.is_empty() {
        ALL.iter().map(|s| s.to_string()).collect()
    } else {
        args.names.clone()
    };
    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("--csv {dir}: {e}")));
    }
    println!(
        "# backfill-sim repro — jobs={} seeds={:?} load={}\n",
        args.opts.jobs, args.opts.seeds, args.opts.load
    );
    for name in &names {
        let t0 = std::time::Instant::now();
        let tables = run(name, &args.opts);
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.render());
            if let Some(dir) = &args.csv_dir {
                let suffix = if tables.len() > 1 {
                    format!("-{}", i + 1)
                } else {
                    String::new()
                };
                let path = format!("{dir}/{name}{suffix}.csv");
                std::fs::write(&path, table.to_csv())
                    .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
            }
        }
        obs::info!(target: "repro", "{name}: {:.1?}", t0.elapsed());
    }
}
