//! `trace-summary` — aggregate a `--trace-out` decision-trace file.
//!
//! ```text
//! trace-summary FILE.jsonl
//! ```
//!
//! Reads the JSONL decision trace that `bfsim simulate --trace-out` /
//! `bfsim bench --trace-out` emit, reconstructs per-job timelines
//! (`bench::trace_analysis`), and prints mean wait and mean bounded
//! slowdown overall and per paper category — the same numbers the
//! simulator's own `metrics::aggregate` path reports, recomputed from
//! the wire format alone.

use bench::trace_analysis::{analyze, parse_jsonl};

fn die(msg: &str) -> ! {
    obs::error!(target: "trace_summary", "{msg}");
    std::process::exit(2);
}

fn main() {
    let _ = obs::log::init_from_env();
    let mut paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.iter().any(|a| a == "--help" || a == "-h") || paths.is_empty() {
        println!("usage: trace-summary FILE.jsonl");
        std::process::exit(if paths.is_empty() { 2 } else { 0 });
    }
    if paths.len() > 1 {
        die("expected exactly one trace file");
    }
    let path = paths.remove(0);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let events = parse_jsonl(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let analysis = analyze(&events);

    println!(
        "{} events, {} completed jobs, {} incomplete",
        events.len(),
        analysis.overall.count,
        analysis.incomplete
    );
    println!(
        "{:<8} {:>8} {:>14} {:>16}",
        "group", "jobs", "mean wait (s)", "bounded slowdown"
    );
    println!(
        "{:<8} {:>8} {:>14.1} {:>16.2}",
        "all",
        analysis.overall.count,
        analysis.overall.mean_wait(),
        analysis.overall.mean_slowdown()
    );
    for (cat, summary) in &analysis.per_category {
        println!(
            "{:<8} {:>8} {:>14.1} {:>16.2}",
            format!("{cat:?}"),
            summary.count,
            summary.mean_wait(),
            summary.mean_slowdown()
        );
    }
}
