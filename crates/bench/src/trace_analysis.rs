//! Reconstruct per-job timelines from a decision-trace JSONL file.
//!
//! The `--trace-out` flag of `bfsim simulate`/`bfsim bench` dumps the
//! recorder's events (see `obs::trace` for the schema). This module
//! joins each job's `Arrive`/`Start`/`Complete` events back into a
//! timeline and aggregates mean wait and mean bounded slowdown per
//! paper category — the same numbers `metrics::aggregate` computes from
//! the schedule itself, so the two paths cross-check each other (pinned
//! by `tests/trace_analysis_crosscheck.rs`).
//!
//! For a job that was never preempted, `Complete.t − Start.t` *is* its
//! runtime, so wait and slowdown are exact. A preempted job's runtime is
//! recovered from `Arrive.estimate / Complete.overestimate_factor`,
//! which round-trips through a float — accurate to the second in
//! practice, but the exactness guarantee holds only for non-preemptive
//! runs.

use obs::trace::{TraceCategory, TraceEvent, TraceKind};
use std::collections::BTreeMap;

/// The paper's bounded-slowdown threshold, matching
/// `metrics::BOUNDED_SLOWDOWN_THRESHOLD_SECS`.
const TAU_SECS: u64 = 10;

/// One job's reconstructed lifecycle.
#[derive(Debug, Clone, Copy)]
pub struct JobTimeline {
    /// Job identifier.
    pub job: u64,
    /// Paper category the driver tagged at arrival.
    pub category: TraceCategory,
    /// Arrival instant, sim seconds.
    pub arrive: u64,
    /// First start instant, sim seconds.
    pub start: u64,
    /// Completion instant, sim seconds.
    pub complete: u64,
    /// Actual runtime in seconds (exact unless `preempted`).
    pub runtime: u64,
    /// True if the job was suspended at least once.
    pub preempted: bool,
}

impl JobTimeline {
    /// Total not-running time: `complete − arrive − runtime` (queue wait
    /// plus suspended spans), matching `JobOutcome::wait`.
    pub fn wait_secs(&self) -> u64 {
        (self.complete - self.arrive).saturating_sub(self.runtime)
    }

    /// Bounded slowdown with the paper's τ = 10 s threshold, matching
    /// `JobOutcome::bounded_slowdown` (denominator floored at 1 s).
    pub fn bounded_slowdown(&self) -> f64 {
        let denom = self.runtime.max(TAU_SECS).max(1) as f64;
        (self.wait_secs() as f64 + denom) / denom
    }
}

/// Running means for one group of jobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupSummary {
    /// Jobs in the group.
    pub count: u64,
    wait_sum: f64,
    slowdown_sum: f64,
}

impl GroupSummary {
    fn push(&mut self, t: &JobTimeline) {
        self.count += 1;
        self.wait_sum += t.wait_secs() as f64;
        self.slowdown_sum += t.bounded_slowdown();
    }

    /// Mean wait in seconds (0 for an empty group).
    pub fn mean_wait(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.wait_sum / self.count as f64
        }
    }

    /// Mean bounded slowdown (0 for an empty group).
    pub fn mean_slowdown(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.slowdown_sum / self.count as f64
        }
    }
}

/// Aggregated timelines: one summary per category plus the overall one.
#[derive(Debug, Clone, Default)]
pub struct TraceAnalysis {
    /// Every reconstructed timeline, in job-id order.
    pub timelines: Vec<JobTimeline>,
    /// All jobs together.
    pub overall: GroupSummary,
    /// `(category, summary)` for each category that appeared.
    pub per_category: Vec<(TraceCategory, GroupSummary)>,
    /// Jobs with an `Arrive` but no `Complete` (truncated trace / ring
    /// overflow); excluded from every summary.
    pub incomplete: u64,
}

impl TraceAnalysis {
    /// The summary for `cat`, if any job of that category completed.
    pub fn category(&self, cat: TraceCategory) -> Option<&GroupSummary> {
        self.per_category
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, s)| s)
    }
}

/// Parse a whole JSONL document (one event per non-empty line).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            TraceEvent::parse_json_line(line).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

/// Join events into per-job timelines and aggregate per category.
///
/// Events may arrive in any order (the recorder emits them in time
/// order, but a ring overflow can drop prefixes); a job missing its
/// `Arrive` or `Complete` is counted in [`TraceAnalysis::incomplete`]
/// rather than guessed at.
pub fn analyze(events: &[TraceEvent]) -> TraceAnalysis {
    #[derive(Default)]
    struct Partial {
        category: Option<TraceCategory>,
        arrive: Option<u64>,
        estimate: Option<u64>,
        start: Option<u64>,
        complete: Option<u64>,
        overestimate_factor: Option<f64>,
        preempted: bool,
    }

    let mut jobs: BTreeMap<u64, Partial> = BTreeMap::new();
    for ev in events {
        let p = jobs.entry(ev.job).or_default();
        if p.category.is_none() && ev.category != TraceCategory::Unknown {
            p.category = Some(ev.category);
        }
        match &ev.kind {
            TraceKind::Arrive { estimate, .. } => {
                p.arrive = Some(ev.time);
                p.estimate = Some(*estimate);
            }
            // Keep the FIRST start: a preempted job restarts later, but
            // wait accounting keys off the initial dispatch.
            TraceKind::Start => {
                if p.start.is_none() {
                    p.start = Some(ev.time);
                }
            }
            TraceKind::Complete {
                overestimate_factor,
            } => {
                p.complete = Some(ev.time);
                p.overestimate_factor = Some(*overestimate_factor);
            }
            TraceKind::Preempt => p.preempted = true,
            TraceKind::Reserve { .. } | TraceKind::Backfill { .. } | TraceKind::Compress { .. } => {
            }
        }
    }

    let mut analysis = TraceAnalysis::default();
    for (job, p) in jobs {
        let (Some(arrive), Some(start), Some(complete)) = (p.arrive, p.start, p.complete) else {
            analysis.incomplete += 1;
            continue;
        };
        let runtime = if p.preempted {
            // Recover the true runtime from the overestimation factor
            // (estimate ÷ runtime); `complete − start` would include
            // suspended spans.
            match (p.estimate, p.overestimate_factor) {
                (Some(est), Some(f)) if f > 0.0 => (est as f64 / f).round() as u64,
                _ => complete - start,
            }
        } else {
            complete - start
        };
        let timeline = JobTimeline {
            job,
            category: p.category.unwrap_or(TraceCategory::Unknown),
            arrive,
            start,
            complete,
            runtime,
            preempted: p.preempted,
        };
        analysis.overall.push(&timeline);
        match analysis
            .per_category
            .iter_mut()
            .find(|(c, _)| *c == timeline.category)
        {
            Some((_, summary)) => summary.push(&timeline),
            None => {
                let mut summary = GroupSummary::default();
                summary.push(&timeline);
                analysis.per_category.push((timeline.category, summary));
            }
        }
        analysis.timelines.push(timeline);
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, job: u64, cat: TraceCategory, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            time,
            job,
            category: cat,
            kind,
        }
    }

    #[test]
    fn joins_lifecycle_into_wait_and_slowdown() {
        // Job 1 (SN): arrive 0, start 50, runs 100 → wait 50,
        // slowdown (50+100)/100 = 1.5.
        let events = vec![
            ev(
                0,
                1,
                TraceCategory::SN,
                TraceKind::Arrive {
                    estimate: 100,
                    width: 1,
                },
            ),
            ev(50, 1, TraceCategory::SN, TraceKind::Start),
            ev(
                150,
                1,
                TraceCategory::SN,
                TraceKind::Complete {
                    overestimate_factor: 1.0,
                },
            ),
        ];
        let analysis = analyze(&events);
        assert_eq!(analysis.overall.count, 1);
        assert!((analysis.overall.mean_wait() - 50.0).abs() < 1e-12);
        assert!((analysis.overall.mean_slowdown() - 1.5).abs() < 1e-12);
        let sn = analysis.category(TraceCategory::SN).expect("SN summary");
        assert_eq!(sn.count, 1);
    }

    #[test]
    fn short_jobs_use_the_tau_floor() {
        // Runtime 2 < τ=10: slowdown = (wait + 10)/10.
        let events = vec![
            ev(
                0,
                7,
                TraceCategory::SN,
                TraceKind::Arrive {
                    estimate: 2,
                    width: 1,
                },
            ),
            ev(98, 7, TraceCategory::SN, TraceKind::Start),
            ev(
                100,
                7,
                TraceCategory::SN,
                TraceKind::Complete {
                    overestimate_factor: 1.0,
                },
            ),
        ];
        let analysis = analyze(&events);
        assert!((analysis.overall.mean_slowdown() - 10.8).abs() < 1e-12);
    }

    #[test]
    fn incomplete_jobs_are_counted_not_guessed() {
        let events = vec![ev(
            0,
            1,
            TraceCategory::LW,
            TraceKind::Arrive {
                estimate: 100,
                width: 8,
            },
        )];
        let analysis = analyze(&events);
        assert_eq!(analysis.incomplete, 1);
        assert_eq!(analysis.overall.count, 0);
        assert!(analysis.timelines.is_empty());
    }

    #[test]
    fn preempted_runtime_recovered_from_factor() {
        // estimate 200, factor 2.0 → true runtime 100; complete − start
        // = 180 would be wrong.
        let events = vec![
            ev(
                0,
                3,
                TraceCategory::LN,
                TraceKind::Arrive {
                    estimate: 200,
                    width: 2,
                },
            ),
            ev(10, 3, TraceCategory::LN, TraceKind::Start),
            ev(60, 3, TraceCategory::LN, TraceKind::Preempt),
            ev(120, 3, TraceCategory::LN, TraceKind::Start),
            ev(
                190,
                3,
                TraceCategory::LN,
                TraceKind::Complete {
                    overestimate_factor: 2.0,
                },
            ),
        ];
        let analysis = analyze(&events);
        let t = analysis.timelines[0];
        assert!(t.preempted);
        assert_eq!(t.runtime, 100);
        // wait = 190 − 0 − 100 = 90.
        assert_eq!(t.wait_secs(), 90);
    }

    #[test]
    fn parse_jsonl_reports_line_numbers() {
        let good = r#"{"t":1,"job":2,"cat":"SN","ev":"Start"}"#;
        let doc = format!("{good}\n\nnot json\n");
        let err = parse_jsonl(&doc).unwrap_err();
        assert!(err.starts_with("line 3:"), "got {err}");
        assert_eq!(parse_jsonl(good).unwrap().len(), 1);
    }
}
