//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] is the serializable description of one parameter
//! sweep: a grid of trace models × seeds × estimate models × loads ×
//! scheduler kinds × priority policies. [`SweepSpec::expand`] turns it
//! into the concrete `RunConfig` cells in a **pinned, deterministic
//! order** (trace model outermost, policy innermost), so two processes
//! expanding the same spec — the `bfsim bench` harness and the
//! distributed sweep coordinator — agree on every cell and its index.
//!
//! The pinned bench grids ([`tiny_spec`], [`full_specs`],
//! [`bench_cells`]) are expressed as specs too, so there is exactly one
//! expansion code path: a sweep sharded across daemons by the
//! coordinator covers byte-for-byte the same cells the serial bench
//! measures.

use backfill_sim::{RunConfig, Scenario, SchedulerKind, TraceSource};
use sched::Policy;
use serde::{Deserialize, Serialize};
use simcore::SimSpan;
use workload::{EstimateModel, UserModelParams};

/// Which synthetic workload model a sweep axis draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceModel {
    /// CTC SP2 model (430 nodes).
    Ctc,
    /// SDSC SP2 model (128 nodes).
    Sdsc,
}

impl TraceModel {
    /// Bind the model to a job count and generator seed.
    pub fn source(self, jobs: usize, seed: u64) -> TraceSource {
        match self {
            TraceModel::Ctc => TraceSource::Ctc { jobs, seed },
            TraceModel::Sdsc => TraceSource::Sdsc { jobs, seed },
        }
    }
}

/// A declarative parameter sweep: the cross product of every axis.
///
/// Axes expand in this fixed nesting order (outermost first):
/// `models → seeds → estimates → estimate_seeds → loads → kinds →
/// policies`. The order is part of the format — cell indices derived
/// from it are stable across processes and code versions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Trace models to sweep.
    pub models: Vec<TraceModel>,
    /// Jobs per generated trace.
    pub jobs: usize,
    /// Trace-generator seeds to sweep.
    pub seeds: Vec<u64>,
    /// Estimate models to sweep.
    pub estimates: Vec<EstimateModel>,
    /// Seeds for stochastic estimate models.
    pub estimate_seeds: Vec<u64>,
    /// Offered loads ρ to sweep (`None` keeps the model's native load).
    pub loads: Vec<Option<f64>>,
    /// Backfilling strategies to sweep.
    pub kinds: Vec<SchedulerKind>,
    /// Queue-priority policies to sweep.
    pub policies: Vec<Policy>,
}

impl SweepSpec {
    /// Number of cells [`Self::expand`] will produce (before any
    /// dedup): the product of every axis length.
    pub fn cell_count(&self) -> u64 {
        [
            self.models.len(),
            self.seeds.len(),
            self.estimates.len(),
            self.estimate_seeds.len(),
            self.loads.len(),
            self.kinds.len(),
            self.policies.len(),
        ]
        .iter()
        .map(|&n| n as u64)
        .product()
    }

    /// Reject specs that cannot expand to at least one cell.
    pub fn validate(&self) -> Result<(), String> {
        let axes: [(&str, usize); 7] = [
            ("models", self.models.len()),
            ("seeds", self.seeds.len()),
            ("estimates", self.estimates.len()),
            ("estimate_seeds", self.estimate_seeds.len()),
            ("loads", self.loads.len()),
            ("kinds", self.kinds.len()),
            ("policies", self.policies.len()),
        ];
        let empty: Vec<&str> = axes
            .iter()
            .filter(|(_, n)| *n == 0)
            .map(|(name, _)| *name)
            .collect();
        if !empty.is_empty() {
            return Err(format!("empty sweep axes: {}", empty.join(", ")));
        }
        if self.jobs == 0 {
            return Err("jobs must be >= 1".to_string());
        }
        Ok(())
    }

    /// Expand to concrete cells in the pinned nesting order. Purely a
    /// function of the spec: equal specs expand identically in every
    /// process.
    pub fn expand(&self) -> Vec<RunConfig> {
        let mut cells = Vec::with_capacity(self.cell_count() as usize);
        for &model in &self.models {
            for &seed in &self.seeds {
                for &estimate in &self.estimates {
                    for &estimate_seed in &self.estimate_seeds {
                        for &load in &self.loads {
                            let scenario = Scenario {
                                source: model.source(self.jobs, seed),
                                estimate,
                                estimate_seed,
                                load,
                            };
                            for &kind in &self.kinds {
                                for &policy in &self.policies {
                                    cells.push(RunConfig {
                                        scenario,
                                        kind,
                                        policy,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// The pinned **tiny** bench grid (`bfsim bench --tiny`, CI smoke): one
/// CTC trace under Conservative and EASY across the paper's three
/// policies — six cells, seconds of wall time, and an exact subset of
/// the full sweep.
pub fn tiny_spec() -> SweepSpec {
    SweepSpec {
        models: vec![TraceModel::Ctc],
        jobs: 3_000,
        seeds: vec![7],
        estimates: vec![EstimateModel::Exact],
        estimate_seeds: vec![1],
        loads: vec![Some(0.9)],
        kinds: vec![SchedulerKind::Conservative, SchedulerKind::Easy],
        policies: Policy::PAPER.to_vec(),
    }
}

/// The pinned **full** bench grid as a sequence of specs, expanded in
/// order: the 2-trace × 7-strategy × 3-policy paper grid, then the hot
/// deep-queue cells (sustained 2.2× overload with noisy user estimates)
/// under Conservative, then the single hot EASY/XFactor cell.
pub fn full_specs() -> Vec<SweepSpec> {
    let paper = SweepSpec {
        models: vec![TraceModel::Ctc, TraceModel::Sdsc],
        jobs: 3_000,
        seeds: vec![7],
        estimates: vec![EstimateModel::Exact],
        estimate_seeds: vec![1],
        loads: vec![Some(0.9)],
        kinds: vec![
            SchedulerKind::NoBackfill,
            SchedulerKind::Conservative,
            SchedulerKind::Easy,
            SchedulerKind::Depth { depth: 4 },
            SchedulerKind::Selective { threshold: 2.0 },
            SchedulerKind::Slack { slack_factor: 0.5 },
            SchedulerKind::Preemptive { threshold: 5.0 },
        ],
        policies: Policy::PAPER.to_vec(),
    };
    // The hot cells: noisy user estimates under sustained overload back
    // the queue up to ~1k jobs, and every early completion triggers a
    // compression pass. Pinned to peak ≈ 1.1k queued jobs (probed via
    // `simulate --series`).
    let hot_estimate = EstimateModel::User(UserModelParams::capped(SimSpan::from_hours(18)));
    let hot_conservative = SweepSpec {
        models: vec![TraceModel::Ctc],
        jobs: 20_000,
        seeds: vec![7],
        estimates: vec![hot_estimate],
        estimate_seeds: vec![7],
        loads: vec![Some(2.2)],
        kinds: vec![SchedulerKind::Conservative],
        policies: Policy::PAPER.to_vec(),
    };
    let hot_easy = SweepSpec {
        kinds: vec![SchedulerKind::Easy],
        policies: vec![Policy::XFactor],
        ..hot_conservative.clone()
    };
    vec![paper, hot_conservative, hot_easy]
}

/// The pinned bench sweep as concrete cells. Fixed traces, seeds and
/// loads: numbers from two runs of the same binary are comparable, and
/// numbers from two versions of the code measure the code, not the
/// workload. `tiny` shrinks it to six cells for CI smoke testing — an
/// exact *subset* of the full sweep, so a tiny run can be compared
/// (`--baseline`, `--enforce-parity`) against a full report and every
/// cell finds its baseline partner.
pub fn bench_cells(tiny: bool) -> Vec<RunConfig> {
    if tiny {
        tiny_spec().expand()
    } else {
        full_specs().iter().flat_map(SweepSpec::expand).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_is_a_subset_and_prefix_order_is_pinned() {
        let tiny = bench_cells(true);
        let full = bench_cells(false);
        assert_eq!(tiny.len(), 6);
        assert_eq!(full.len(), 2 * 7 * 3 + 3 + 1);
        for cell in &tiny {
            assert!(full.contains(cell), "tiny cell {cell:?} missing from full");
        }
        // The tiny grid's order itself is pinned: Conservative before
        // EASY, FCFS/SJF/XFactor within each.
        assert_eq!(tiny[0].kind, SchedulerKind::Conservative);
        assert_eq!(tiny[3].kind, SchedulerKind::Easy);
        assert_eq!(tiny[0].policy, Policy::Fcfs);
        assert_eq!(tiny[2].policy, Policy::XFactor);
    }

    #[test]
    fn expansion_is_deterministic_and_counts_match() {
        let spec = SweepSpec {
            models: vec![TraceModel::Ctc, TraceModel::Sdsc],
            jobs: 100,
            seeds: vec![1, 2, 3],
            estimates: vec![EstimateModel::Exact, EstimateModel::systematic(3.0)],
            estimate_seeds: vec![1],
            loads: vec![Some(0.7), None],
            kinds: vec![SchedulerKind::Easy],
            policies: vec![Policy::Fcfs, Policy::Sjf],
        };
        assert_eq!(spec.cell_count(), 2 * 3 * 2 * 2 * 2);
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(a.len(), spec.cell_count() as usize);
        assert_eq!(a, b, "expansion must be deterministic");
        // Innermost axis varies fastest.
        assert_eq!(a[0].policy, Policy::Fcfs);
        assert_eq!(a[1].policy, Policy::Sjf);
        assert_eq!(a[0].scenario, a[1].scenario);
    }

    #[test]
    fn validate_rejects_empty_axes() {
        let mut spec = tiny_spec();
        assert!(spec.validate().is_ok());
        spec.policies.clear();
        spec.seeds.clear();
        let err = spec.validate().unwrap_err();
        assert!(err.contains("policies") && err.contains("seeds"), "{err}");
        assert_eq!(spec.cell_count(), 0);
        let mut zero_jobs = tiny_spec();
        zero_jobs.jobs = 0;
        assert!(zero_jobs.validate().is_err());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = tiny_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        assert_eq!(spec.expand(), back.expand());
    }
}
