//! # bench — experiment harness and benchmarks for `backfill-sim`
//!
//! * [`experiments`] — regenerates every table and figure of the paper
//!   (plus ablations); driven by the `repro` binary;
//! * [`trace_analysis`] — reconstructs per-category wait/slowdown
//!   timelines from a `--trace-out` decision-trace JSONL file;
//! * `benches/` — Criterion microbenchmarks of the simulator itself
//!   (profile operations, scheduler throughput, trace generation).

#![warn(missing_docs)]

pub mod experiments;
pub mod trace_analysis;
