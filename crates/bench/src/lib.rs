//! # bench — experiment harness and benchmarks for `backfill-sim`
//!
//! * [`experiments`] — regenerates every table and figure of the paper
//!   (plus ablations); driven by the `repro` binary;
//! * [`sweep`] — declarative, serializable sweep specifications and
//!   their pinned deterministic expansion to `RunConfig` cells, shared
//!   by `bfsim bench` and the distributed sweep coordinator;
//! * [`trace_analysis`] — reconstructs per-category wait/slowdown
//!   timelines from a `--trace-out` decision-trace JSONL file;
//! * `benches/` — Criterion microbenchmarks of the simulator itself
//!   (profile operations, scheduler throughput, trace generation).

#![warn(missing_docs)]

pub mod experiments;
pub mod sweep;
pub mod trace_analysis;
