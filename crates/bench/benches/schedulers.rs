//! Simulator throughput benchmarks: events per second through each
//! scheduler × estimate regime. These are the numbers that bound how big a
//! parameter sweep the repro harness can afford.

use backfill_sim::prelude::*;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn trace_for(estimate: EstimateModel, jobs: usize) -> Trace {
    Scenario {
        source: TraceSource::Ctc { jobs, seed: 42 },
        estimate,
        estimate_seed: 1,
        load: Some(0.9),
    }
    .materialize()
}

fn bench_schedulers_exact(c: &mut Criterion) {
    let jobs = 3_000;
    let trace = trace_for(EstimateModel::Exact, jobs);
    let mut group = c.benchmark_group("simulate/exact");
    group.throughput(Throughput::Elements(jobs as u64));
    for (name, kind) in [
        ("nobf", SchedulerKind::NoBackfill),
        ("conservative", SchedulerKind::Conservative),
        ("easy", SchedulerKind::Easy),
        ("selective", SchedulerKind::Selective { threshold: 2.0 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| black_box(simulate(t, kind, Policy::Fcfs)))
        });
    }
    group.finish();
}

fn bench_schedulers_noisy(c: &mut Criterion) {
    // Noisy estimates are the stress case: every completion is early, so
    // conservative compression and EASY re-sorting run constantly.
    let jobs = 3_000;
    let user = EstimateModel::User(UserModelParams::default());
    let trace = trace_for(user, jobs);
    let mut group = c.benchmark_group("simulate/noisy");
    group.throughput(Throughput::Elements(jobs as u64));
    for (name, kind) in [
        ("conservative", SchedulerKind::Conservative),
        ("cons-reanchor", SchedulerKind::ConservativeReanchor),
        ("easy", SchedulerKind::Easy),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| black_box(simulate(t, kind, Policy::Sjf)))
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // How simulation cost scales with trace length (queue depths grow at
    // fixed load, so this is super-linear for reservation-based schemes).
    let mut group = c.benchmark_group("simulate/scaling-easy");
    for &jobs in &[1_000usize, 4_000, 16_000] {
        let trace = trace_for(EstimateModel::Exact, jobs);
        group.throughput(Throughput::Elements(jobs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &trace, |b, t| {
            b.iter(|| black_box(simulate(t, SchedulerKind::Easy, Policy::XFactor)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_schedulers_exact, bench_schedulers_noisy, bench_scaling
}
criterion_main!(benches);
