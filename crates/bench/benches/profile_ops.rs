//! Microbenchmarks of the availability profile — the inner loop of every
//! backfilling decision. Measures anchor search, reservation, and release
//! at several profile densities (number of live segments).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sched::Profile;
use simcore::{SimRng, SimSpan, SimTime};

/// Build a profile with roughly `n` reservations of mixed shape.
fn dense_profile(n: usize, cap: u32, seed: u64) -> Profile {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut p = Profile::new(cap);
    for _ in 0..n {
        let earliest = SimTime::new(rng.below(500_000));
        let dur = SimSpan::new(1 + rng.below(20_000));
        let width = 1 + rng.below(cap as u64 / 4) as u32;
        let anchor = p.find_anchor(earliest, dur, width);
        p.reserve(anchor, dur, width);
    }
    p
}

/// Query stream for the anchor benches: random earliest instants with
/// widths drawn from the same distribution the reservations were — anchor
/// queries in the simulator carry real job widths, so the bench must span
/// narrow probes (answered near `earliest`) and wide ones (long scans over
/// congested terrain, where the block index pays off).
fn query(rng: &mut SimRng, cap: u32) -> (SimTime, u32) {
    let earliest = SimTime::new(rng.below(500_000));
    let width = 1 + rng.below(cap as u64 / 4) as u32;
    (earliest, width)
}

fn bench_find_anchor(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile/find_anchor");
    for &n in &[16usize, 128, 1024] {
        let p = dense_profile(n, 430, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            let mut rng = SimRng::seed_from_u64(7);
            b.iter(|| {
                let (earliest, width) = query(&mut rng, 430);
                black_box(p.find_anchor(earliest, SimSpan::new(5_000), width))
            })
        });
    }
    group.finish();
}

/// The pre-index linear scan over the same profiles and query stream —
/// the baseline the block index is measured against.
fn bench_find_anchor_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile/find_anchor_linear");
    for &n in &[16usize, 128, 1024] {
        let p = dense_profile(n, 430, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            // Identical query stream to `profile/find_anchor` (same seed).
            let mut rng = SimRng::seed_from_u64(7);
            b.iter(|| {
                let (earliest, width) = query(&mut rng, 430);
                black_box(p.find_anchor_linear(earliest, SimSpan::new(5_000), width))
            })
        });
    }
    group.finish();
}

fn bench_reserve_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile/reserve_release");
    for &n in &[16usize, 128, 1024] {
        let p = dense_profile(n, 430, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            let mut rng = SimRng::seed_from_u64(9);
            b.iter_batched(
                || p.clone(),
                |mut p| {
                    let earliest = SimTime::new(rng.below(500_000));
                    let dur = SimSpan::new(5_000);
                    let anchor = p.find_anchor(earliest, dur, 32);
                    p.reserve(anchor, dur, 32);
                    p.release(anchor, dur, 32);
                    p
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_free_at(c: &mut Criterion) {
    let p = dense_profile(1024, 430, 42);
    c.bench_function("profile/free_at/1024segs", |b| {
        let mut rng = SimRng::seed_from_u64(11);
        b.iter(|| black_box(p.free_at(SimTime::new(rng.below(1_000_000)))))
    });
}

criterion_group!(
    benches,
    bench_find_anchor,
    bench_find_anchor_linear,
    bench_reserve_release,
    bench_free_at
);
criterion_main!(benches);
