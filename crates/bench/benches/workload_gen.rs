//! Workload-substrate benchmarks: trace generation, estimate models, SWF
//! serialization, and the distribution samplers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simcore::{SimRng, SimSpan};
use workload::dist::{Categorical, Exponential, LogNormal, Sample, Weibull, Zipf};
use workload::models::{ctc, sdsc};
use workload::{swf, EstimateModel, UserModelParams};

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload/generate");
    for (name, model) in [("ctc", ctc()), ("sdsc", sdsc())] {
        let jobs = 10_000usize;
        group.throughput(Throughput::Elements(jobs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, m| {
            b.iter(|| black_box(m.generate(jobs, 42)))
        });
    }
    group.finish();
}

fn bench_estimate_models(c: &mut Criterion) {
    let trace = ctc().generate(10_000, 42);
    let mut group = c.benchmark_group("workload/estimates");
    group.throughput(Throughput::Elements(trace.len() as u64));
    let models = [
        ("exact", EstimateModel::Exact),
        ("systematic4", EstimateModel::systematic(4.0)),
        (
            "user",
            EstimateModel::User(UserModelParams::capped(SimSpan::from_hours(18))),
        ),
    ];
    for (name, model) in models {
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| black_box(model.apply(t, 7)))
        });
    }
    group.finish();
}

fn bench_swf(c: &mut Criterion) {
    let trace = ctc().generate(10_000, 42);
    let text = swf::write_trace(&trace);
    let mut group = c.benchmark_group("workload/swf");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("write", |b| b.iter(|| black_box(swf::write_trace(&trace))));
    group.bench_function("parse", |b| {
        b.iter(|| black_box(swf::parse_trace(&text, "bench", None).expect("parses")))
    });
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload/samplers");
    let lognormal = LogNormal::from_median(380.0, 1.4);
    let weibull = Weibull::new(0.6, 500.0);
    let exponential = Exponential::with_mean(1_000.0);
    let zipf = Zipf::new(430, 0.8);
    let cat = Categorical::new(&[0.45, 0.12, 0.30, 0.13]);
    group.bench_function("lognormal", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| black_box(lognormal.sample(&mut rng)))
    });
    group.bench_function("weibull", |b| {
        let mut rng = SimRng::seed_from_u64(2);
        b.iter(|| black_box(weibull.sample(&mut rng)))
    });
    group.bench_function("exponential", |b| {
        let mut rng = SimRng::seed_from_u64(3);
        b.iter(|| black_box(exponential.sample(&mut rng)))
    });
    group.bench_function("zipf430", |b| {
        let mut rng = SimRng::seed_from_u64(4);
        b.iter(|| black_box(zipf.sample_rank(&mut rng)))
    });
    group.bench_function("categorical-alias", |b| {
        let mut rng = SimRng::seed_from_u64(5);
        b.iter(|| black_box(cat.sample_index(&mut rng)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_trace_generation, bench_estimate_models, bench_swf, bench_samplers
}
criterion_main!(benches);
