//! Microbenchmarks for the ladder event queue against the binary-heap
//! baseline it replaced (DESIGN.md §16): steady-state push/pop churn at
//! 32 (the simulator's shallow steady state under lazy arrival seeding),
//! 1k, and 100k pending events.
//!
//! The workload mirrors the simulator's access pattern — pop the earliest
//! event, push a replacement a bounded horizon ahead — rather than
//! heap-sort-style fill-then-drain: the ladder's win is that near-future
//! buckets recycle without per-event allocation or sift-down traffic, and
//! only this churn pattern exercises that.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simcore::{EventQueue, HeapEventQueue, SimSpan, SimTime, SplitMix64};

/// Deterministic pseudo-random offsets, same stream for both queues.
fn offsets(n: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(0x5eed);
    (0..n).map(|_| rng.next_u64() % 3_600).collect()
}

/// One churn step: pop the earliest event, push its successor `offset`
/// seconds later. Repeated `steps` times over a queue pre-filled with
/// `pending` events.
fn churn_ladder(pending: usize, steps: usize) -> u64 {
    let offs = offsets(pending + steps);
    let mut q = EventQueue::new();
    for (i, &off) in offs[..pending].iter().enumerate() {
        q.push(SimTime::new(off), i as u64);
    }
    let mut acc = 0u64;
    for &off in &offs[pending..] {
        let (t, payload) = q.pop().expect("queue stays non-empty");
        acc = acc.wrapping_add(payload);
        q.push(t + SimSpan::new(off), payload);
    }
    acc
}

fn churn_heap(pending: usize, steps: usize) -> u64 {
    let offs = offsets(pending + steps);
    let mut q = HeapEventQueue::new();
    for (i, &off) in offs[..pending].iter().enumerate() {
        q.push(SimTime::new(off), i as u64);
    }
    let mut acc = 0u64;
    for &off in &offs[pending..] {
        let (t, payload) = q.pop().expect("queue stays non-empty");
        acc = acc.wrapping_add(payload);
        q.push(t + SimSpan::new(off), payload);
    }
    acc
}

fn bench_event_queue_ops(c: &mut Criterion) {
    const STEPS: usize = 10_000;
    let mut group = c.benchmark_group("event_queue_ops");
    group.throughput(Throughput::Elements(STEPS as u64));
    for pending in [32usize, 1_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("ladder", pending),
            &pending,
            |b, &pending| b.iter(|| black_box(churn_ladder(pending, STEPS))),
        );
        group.bench_with_input(
            BenchmarkId::new("heap", pending),
            &pending,
            |b, &pending| b.iter(|| black_box(churn_heap(pending, STEPS))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue_ops);
criterion_main!(benches);
