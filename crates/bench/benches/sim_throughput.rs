//! End-to-end event-loop throughput on the contended cells the PR-3
//! optimizations target: deep queues (~1k waiting jobs) where per-event
//! queue sorting and running-profile rebuilds used to dominate.
//!
//! The companion `bfsim bench` subcommand runs the same cells outside
//! criterion and emits the machine-readable `BENCH_3.json`; this harness
//! is for statistically careful A/B runs on individual cells
//! (`cargo bench --bench sim_throughput`).

use backfill_sim::prelude::*;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// The overloaded CTC scenario from the BENCH_3 sweep: queue depth peaks
/// above 1000 jobs, so event cost is dominated by queue maintenance.
fn hot_scenario(jobs: usize) -> Scenario {
    Scenario {
        source: TraceSource::Ctc { jobs, seed: 7 },
        estimate: EstimateModel::User(UserModelParams::capped(SimSpan::from_hours(18))),
        estimate_seed: 7,
        load: Some(2.2),
    }
}

fn bench_deep_queue(c: &mut Criterion) {
    let jobs = 6_000;
    let trace = hot_scenario(jobs).materialize();
    let mut group = c.benchmark_group("sim_throughput/deep-queue");
    group.throughput(Throughput::Elements(jobs as u64));
    for (name, kind, policy) in [
        (
            "conservative-xf",
            SchedulerKind::Conservative,
            Policy::XFactor,
        ),
        (
            "conservative-fcfs",
            SchedulerKind::Conservative,
            Policy::Fcfs,
        ),
        ("easy-xf", SchedulerKind::Easy, Policy::XFactor),
        ("easy-sjf", SchedulerKind::Easy, Policy::Sjf),
        (
            "depth4-xf",
            SchedulerKind::Depth { depth: 4 },
            Policy::XFactor,
        ),
        (
            "selective2-xf",
            SchedulerKind::Selective { threshold: 2.0 },
            Policy::XFactor,
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| black_box(simulate(t, kind, policy)))
        });
    }
    group.finish();
}

fn bench_policy_spread(c: &mut Criterion) {
    // Same scheduler, every policy: isolates queue-ordering cost (static
    // policies never re-sort; XFactor re-keys once per event instant).
    let jobs = 6_000;
    let trace = hot_scenario(jobs).materialize();
    let mut group = c.benchmark_group("sim_throughput/easy-policies");
    group.throughput(Throughput::Elements(jobs as u64));
    for policy in [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::Ljf,
        Policy::WidestFirst,
        Policy::XFactor,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy}")),
            &trace,
            |b, t| b.iter(|| black_box(simulate(t, SchedulerKind::Easy, policy))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_deep_queue, bench_policy_spread
}
criterion_main!(benches);
