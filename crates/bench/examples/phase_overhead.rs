//! Quick manual probe: per-event overhead of phase profiling, under the
//! exact conditions of a traced sweep (spans enabled, span ctx set).
use backfill_sim::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    obs::span::set_enabled(true);
    obs::span::calibrate_clock();
    for config in bench::sweep::tiny_spec().expand() {
        let trace = config.scenario.materialize();
        let plain = simulate(&trace, config.kind, config.policy);
        let events = plain.events;
        let mut best = [u64::MAX; 2];
        for (which, slot) in best.iter_mut().enumerate() {
            for _ in 0..5 {
                let t0 = std::time::Instant::now();
                if which == 0 {
                    let s = simulate(&trace, config.kind, config.policy);
                    assert_eq!(s.fingerprint(), plain.fingerprint());
                } else {
                    let acc = Rc::new(RefCell::new(obs::PhaseAcc::new()));
                    acc.borrow_mut().set_ctx(obs::SpanContext {
                        trace_id: 1,
                        span_id: 1,
                    });
                    let (s, _) = simulate_observed(
                        &trace,
                        config.kind,
                        config.policy,
                        SimOptions::with_phases(acc),
                    );
                    assert_eq!(s.fingerprint(), plain.fingerprint());
                }
                *slot = (*slot).min(t0.elapsed().as_nanos() as u64);
            }
        }
        let _ = obs::span::drain();
        println!(
            "{} {:?}: plain {:.2} ms, phases {:.2} ms (+{:.1}%), {} events, +{:.0} ns/event",
            config.kind.label(),
            config.policy,
            best[0] as f64 / 1e6,
            best[1] as f64 / 1e6,
            100.0 * (best[1] as f64 - best[0] as f64) / best[0] as f64,
            events,
            (best[1] as f64 - best[0] as f64) / events as f64
        );
    }
}
