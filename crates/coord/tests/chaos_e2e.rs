//! Shard-death chaos: one shard drops every connection mid-submit, the
//! coordinator must finish the sweep degraded on the survivor with
//! exactly one result per cell and fingerprints still byte-identical to
//! the sequential reference. Also: a shard that is gone before the
//! sweep starts fails the startup handshake with `ShardUnreachable`.

use backfill_sim::{run_all, SchedulerKind};
use bench_lib::sweep::{SweepSpec, TraceModel};
use coord::{run_sweep, Plan, SweepError, SweepOptions};
use sched::Policy;
use service::{Client, ClientOptions, FaultPlan, RetryPolicy, Server, ServiceConfig};
use std::time::Duration;
use workload::EstimateModel;

fn small_spec() -> SweepSpec {
    SweepSpec {
        models: vec![TraceModel::Ctc, TraceModel::Sdsc],
        jobs: 120,
        seeds: vec![7, 8],
        estimates: vec![EstimateModel::Exact],
        estimate_seeds: vec![1],
        loads: vec![Some(0.9)],
        kinds: vec![SchedulerKind::Easy, SchedulerKind::Conservative],
        policies: Policy::PAPER.to_vec(),
    }
}

#[test]
fn sweep_survives_a_shard_that_dies_mid_sweep() {
    let good = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("good shard");
    // The evil shard answers the handshake (capabilities never claims a
    // fault index) but drops the connection on every submit — the
    // transport signature of a daemon dying mid-request.
    let evil = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            fault_plan: Some(FaultPlan::parse("drop@0..100000").expect("plan parses")),
            ..ServiceConfig::default()
        },
    )
    .expect("evil shard");
    let shards = [good.addr().to_string(), evil.addr().to_string()];
    let cells = small_spec().expand();
    let plan = Plan::new(&cells, shards.len());
    assert!(
        !plan.assigned_to(1).is_empty(),
        "precondition: the dying shard must be homed some work"
    );

    // No transport retries: the first dropped connection marks the
    // shard dead and requeues its work onto the survivor. Spans on: the
    // forest must stay well-formed even across failover.
    let opts = SweepOptions {
        client: ClientOptions {
            retry: RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
            ..ClientOptions::default()
        },
        spans: true,
        ..SweepOptions::default()
    };
    let outcome = run_sweep(&shards, &cells, &opts).expect("sweep completes degraded");

    assert!(outcome.degraded, "losing a shard must flag the sweep");
    assert!(
        outcome.failed.is_empty(),
        "every cell must still resolve: {:?}",
        outcome.failed
    );
    assert!(outcome.requeues >= 1, "death must requeue in-flight work");
    assert!(outcome.shards[1].dead, "the evil shard was marked dead");
    assert!(!outcome.shards[0].dead);

    // Exactly one result per cell, all served by the survivor.
    let mut indices: Vec<usize> = outcome.cells.iter().map(|c| c.index).collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..cells.len()).collect::<Vec<_>>());
    for done in &outcome.cells {
        assert_eq!(done.shard, 0, "only the survivor can have answered");
    }

    // Even after a mid-sweep shard death every cell's spans must form a
    // single rooted tree: failed attempts against the dead shard stay
    // children of the cell root, and the root closes exactly once at
    // the surviving shard's completion.
    let merged: Vec<obs::SpanRecord> = outcome
        .spans
        .iter()
        .flat_map(|s| s.spans.iter().cloned())
        .collect();
    let forest = obs::validate_forest(&merged)
        .expect("chaos sweep spans still form one rooted tree per cell");
    assert_eq!(forest.traces, cells.len(), "one trace per unique cell");
    let trace_ids: std::collections::HashSet<u64> = merged.iter().map(|s| s.trace_id).collect();
    assert_eq!(
        trace_ids,
        plan.hashes.iter().copied().collect(),
        "trace ids are exactly the plan's content hashes"
    );

    // Degraded, not different: fingerprints match the serial run.
    let serial = run_all(&cells, None);
    for done in &outcome.cells {
        assert_eq!(
            done.report.fingerprint,
            serial[done.index].schedule.fingerprint(),
            "cell {} diverged after failover",
            done.index
        );
    }

    Client::connect(good.addr())
        .and_then(|mut c| c.shutdown())
        .expect("shutdown good");
    Client::connect(evil.addr())
        .and_then(|mut c| c.shutdown())
        .expect("shutdown evil");
    good.join();
    evil.join();
}

#[test]
fn unreachable_shard_fails_the_startup_handshake() {
    let good = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("good shard");
    // Bind-then-drop reserves an address nobody is listening on.
    let vacant = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let shards = [good.addr().to_string(), vacant.clone()];
    let cells = small_spec().expand();

    let opts = SweepOptions {
        client: ClientOptions {
            deadline: Some(Duration::from_millis(500)),
            retry: RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
        },
        ..SweepOptions::default()
    };
    match run_sweep(&shards, &cells, &opts) {
        Err(SweepError::ShardUnreachable { addr, .. }) => assert_eq!(addr, vacant),
        other => panic!("expected ShardUnreachable, got {other:?}"),
    }

    Client::connect(good.addr())
        .and_then(|mut c| c.shutdown())
        .expect("shutdown good");
    good.join();
}
