//! Crash-recovery e2e: a dead shard that answers the reprobe handshake
//! rejoins mid-sweep and heals the fleet (exit-0 semantics, not
//! degraded); a `--resume`d journal replays finished cells without
//! dispatching them; an interrupt stops the sweep without journaling
//! the preempted cells; and `max_requeues` means *additional* attempts
//! — zero pins exactly one submission per cell.

use backfill_sim::{run_all, SchedulerKind};
use bench_lib::sweep::{SweepSpec, TraceModel};
use coord::{run_sweep_recoverable, Plan, SweepJournal, SweepOptions};
use sched::Policy;
use service::{Client, ClientOptions, FaultPlan, RetryPolicy, Server, ServiceConfig};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;
use workload::EstimateModel;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfsim-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

/// 24 fast cells (2 models × 2 seeds × 2 kinds × 3 policies).
fn small_spec() -> SweepSpec {
    SweepSpec {
        models: vec![TraceModel::Ctc, TraceModel::Sdsc],
        jobs: 120,
        seeds: vec![7, 8],
        estimates: vec![EstimateModel::Exact],
        estimate_seeds: vec![1],
        loads: vec![Some(0.9)],
        kinds: vec![SchedulerKind::Easy, SchedulerKind::Conservative],
        policies: Policy::PAPER.to_vec(),
    }
}

/// No transport retries: the first fatal transport error marks a shard
/// dead instead of being papered over by the client.
fn no_retry() -> ClientOptions {
    ClientOptions {
        retry: RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        },
        ..ClientOptions::default()
    }
}

fn shutdown(handle: service::ServerHandle) {
    Client::connect(handle.addr())
        .and_then(|mut c| c.shutdown())
        .expect("shutdown");
    handle.join();
}

#[test]
fn dead_shard_rejoins_and_heals_the_sweep() {
    // Shard A is slow (50 ms per submit) so the sweep is still running
    // when the casualty comes back.
    let slow = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            fault_plan: Some(FaultPlan::parse("delay@0..100000=50ms").expect("plan parses")),
            ..ServiceConfig::default()
        },
    )
    .expect("slow shard");
    // Shard B drops its first submit (dying from the coordinator's point
    // of view), then refuses reprobe handshakes 1 and 2 before letting
    // the third through: startup consumed handshake index 0, so the
    // sweep sees dead → two failed probes → rejoin.
    let flaky = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            fault_plan: Some(FaultPlan::parse("drop@0;handshake@1..3").expect("plan parses")),
            ..ServiceConfig::default()
        },
    )
    .expect("flaky shard");
    let shards = [slow.addr().to_string(), flaky.addr().to_string()];
    let cells = small_spec().expand();
    let plan = Plan::new(&cells, shards.len());
    assert!(
        !plan.assigned_to(1).is_empty(),
        "precondition: the flaky shard must be homed some work"
    );

    let opts = SweepOptions {
        client: no_retry(),
        window: Some(1),
        reprobe: Some(Duration::from_millis(10)),
        spans: true,
        ..SweepOptions::default()
    };
    let outcome =
        run_sweep_recoverable(&shards, &cells, &opts, None, None).expect("sweep completes");

    assert_eq!(outcome.deaths, 1, "the dropped submit must count a death");
    assert_eq!(outcome.rejoins, 1, "the third reprobe must readmit it");
    assert!(
        !outcome.degraded,
        "a healed fleet must not flag the sweep degraded"
    );
    assert!(!outcome.shards[1].dead, "the rejoined shard is live at end");
    assert!(
        outcome.failed.is_empty(),
        "every cell must resolve: {:?}",
        outcome.failed
    );
    let mut indices: Vec<usize> = outcome.cells.iter().map(|c| c.index).collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..cells.len()).collect::<Vec<_>>());

    // Rejoined, not different: fingerprints match the serial reference.
    let serial = run_all(&cells, None);
    for done in &outcome.cells {
        assert_eq!(
            done.report.fingerprint,
            serial[done.index].schedule.fingerprint(),
            "cell {} diverged after rejoin",
            done.index
        );
    }

    // The span forest now carries one extra sweep-level trace (the
    // reprobe spans under the plan-hash root) next to the cell traces,
    // and must still be a well-formed forest.
    let merged: Vec<obs::SpanRecord> = outcome
        .spans
        .iter()
        .flat_map(|s| s.spans.iter().cloned())
        .collect();
    let forest = obs::validate_forest(&merged).expect("spans form rooted trees");
    assert_eq!(
        forest.traces,
        cells.len() + 1,
        "cell traces plus the sweep-level recovery trace"
    );
    assert!(
        merged
            .iter()
            .any(|s| s.name == "reprobe" && s.trace_id == plan.content_hash()),
        "reprobe attempts are traced under the plan hash"
    );

    shutdown(slow);
    shutdown(flaky);
}

#[test]
fn resume_replays_the_journal_and_skips_done_cells() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("shard");
    let shards = [server.addr().to_string()];
    let cells = small_spec().expand();
    let plan = Plan::new(&cells, shards.len());
    let opts = SweepOptions {
        client: no_retry(),
        ..SweepOptions::default()
    };

    // Reference run, fully journaled.
    let full_path = tmp("resume-full.jsonl");
    let journal = SweepJournal::create(&full_path, &plan).expect("create journal");
    let full = run_sweep_recoverable(&shards, &cells, &opts, Some(&journal), None)
        .expect("reference sweep");
    assert!(full.failed.is_empty());
    assert_eq!(journal.appended(), plan.len() as u64);

    // Simulate a coordinator crash after 5 cells: header + 5 records.
    let text = std::fs::read_to_string(&full_path).expect("read journal");
    let partial: String = text.lines().take(6).map(|l| format!("{l}\n")).collect();
    let partial_path = tmp("resume-partial.jsonl");
    std::fs::write(&partial_path, partial).expect("write partial journal");

    let (journal2, replay) = SweepJournal::resume(&partial_path, &plan).expect("resume journal");
    assert_eq!(replay.resolved(), 5);
    let resumed = run_sweep_recoverable(&shards, &cells, &opts, Some(&journal2), Some(&replay))
        .expect("resumed sweep");

    assert_eq!(resumed.replayed, 5, "journaled cells are not re-dispatched");
    assert!(resumed.failed.is_empty());
    assert_eq!(
        resumed.cells.len(),
        plan.len(),
        "replayed and fresh cells together cover the plan"
    );
    assert_eq!(
        journal2.appended(),
        (plan.len() - 5) as u64,
        "only the remainder is appended on resume"
    );
    // After the resume the journal is complete again.
    let stats = SweepJournal::inspect(&partial_path).expect("inspect");
    assert_eq!(stats.done, plan.len());
    assert_eq!(stats.failed, 0);

    // Same fingerprints as the uninterrupted run, cell for cell.
    let mut full_prints: Vec<(usize, u64)> = full
        .cells
        .iter()
        .map(|c| (c.index, c.report.fingerprint))
        .collect();
    let mut resumed_prints: Vec<(usize, u64)> = resumed
        .cells
        .iter()
        .map(|c| (c.index, c.report.fingerprint))
        .collect();
    full_prints.sort_unstable();
    resumed_prints.sort_unstable();
    assert_eq!(full_prints, resumed_prints);

    shutdown(server);
}

#[test]
fn interrupted_sweep_journals_nothing_it_did_not_finish() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("shard");
    let shards = [server.addr().to_string()];
    let cells = small_spec().expand();
    let plan = Plan::new(&cells, shards.len());
    let path = tmp("interrupted.jsonl");
    let journal = SweepJournal::create(&path, &plan).expect("create journal");

    // The flag is already tripped when the sweep starts: submitters must
    // bail before sending anything, and the preempted cells must land in
    // `failed` *without* journal records (a resume re-runs them).
    let opts = SweepOptions {
        client: no_retry(),
        interrupt: Some(Arc::new(AtomicBool::new(true))),
        ..SweepOptions::default()
    };
    let outcome = run_sweep_recoverable(&shards, &cells, &opts, Some(&journal), None)
        .expect("interrupted sweep still returns");

    assert!(outcome.interrupted);
    assert_eq!(outcome.failed.len(), plan.len());
    assert!(outcome
        .failed
        .iter()
        .all(|f| f.error.contains("interrupted")));
    assert_eq!(journal.appended(), 0, "preempted cells are not journaled");
    let stats = SweepJournal::inspect(&path).expect("inspect");
    assert_eq!(stats.done, 0);

    shutdown(server);
}

#[test]
fn max_requeues_zero_means_exactly_one_attempt_per_cell() {
    // Every submit panics the worker, which answers a *retryable* error:
    // the requeue budget alone decides how many attempts each cell gets.
    let spec = SweepSpec {
        models: vec![TraceModel::Ctc],
        jobs: 50,
        seeds: vec![7, 8],
        estimates: vec![EstimateModel::Exact],
        estimate_seeds: vec![1],
        loads: vec![Some(0.9)],
        kinds: vec![SchedulerKind::Easy],
        policies: vec![Policy::Fcfs, Policy::Sjf],
    };
    let cells = spec.expand();

    for (max_requeues, attempts) in [(0u32, 1u64), (1, 2)] {
        let server = Server::start(
            "127.0.0.1:0",
            ServiceConfig {
                fault_plan: Some(FaultPlan::parse("panic@0..100000").expect("plan parses")),
                ..ServiceConfig::default()
            },
        )
        .expect("panicking shard");
        let shards = [server.addr().to_string()];
        let opts = SweepOptions {
            client: no_retry(),
            max_requeues,
            ..SweepOptions::default()
        };
        let outcome =
            run_sweep_recoverable(&shards, &cells, &opts, None, None).expect("sweep returns");

        assert_eq!(
            outcome.failed.len(),
            cells.len(),
            "every cell fails permanently under an all-panic plan"
        );
        assert_eq!(
            outcome.requeues,
            (attempts - 1) * cells.len() as u64,
            "requeues with --max-requeues {max_requeues}"
        );
        let stats = Client::connect(server.addr())
            .and_then(|mut c| c.stats())
            .expect("stats");
        assert_eq!(
            stats.submitted,
            attempts * cells.len() as u64,
            "--max-requeues {max_requeues} must mean exactly {attempts} attempt(s) per cell"
        );

        shutdown(server);
    }
}
