//! Exit-code taxonomy regressions for `bfsim sweep`: 8 = a shard was
//! unreachable at startup (nothing ran), 9 = the sweep completed but
//! degraded (a shard died mid-sweep, its work was redistributed), and 0
//! for a clean fleet. Drives the real binary the way CI does, against
//! in-process daemons.

use backfill_sim::SchedulerKind;
use bench_lib::sweep::{SweepSpec, TraceModel};
use sched::Policy;
use service::{Client, FaultPlan, Server, ServiceConfig};
use std::path::PathBuf;
use std::process::{Command, Output};
use workload::EstimateModel;

fn bfsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bfsim"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfsim-sweep-exit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// 12 fast cells (2 seeds × 2 kinds × 3 policies) on small traces.
fn spec_file(name: &str) -> PathBuf {
    let spec = SweepSpec {
        models: vec![TraceModel::Ctc],
        jobs: 80,
        seeds: vec![7, 8],
        estimates: vec![EstimateModel::Exact],
        estimate_seeds: vec![1],
        loads: vec![Some(0.9)],
        kinds: vec![SchedulerKind::Easy, SchedulerKind::Conservative],
        policies: Policy::PAPER.to_vec(),
    };
    let path = tmp(name);
    std::fs::write(
        &path,
        serde_json::to_string(&spec).expect("spec serializes"),
    )
    .expect("write spec");
    path
}

fn parse_report(path: &PathBuf) -> serde::Value {
    serde_json::from_str(&std::fs::read_to_string(path).expect("report written"))
        .expect("report parses")
}

fn cells_in(report: &serde::Value) -> usize {
    report
        .field("cells")
        .and_then(|c| c.as_array())
        .expect("cells")
        .len()
}

fn shutdown(handle: service::ServerHandle) {
    Client::connect(handle.addr())
        .and_then(|mut c| c.shutdown())
        .expect("shutdown");
    handle.join();
}

#[test]
fn unreachable_shard_at_startup_exits_8() {
    let good = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("good shard");
    let vacant = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let spec = spec_file("unreachable-spec.json");
    let out_path = tmp("unreachable-sweep.json");

    let out = bfsim()
        .args([
            "sweep",
            "--shards",
            &format!("{},{vacant}", good.addr()),
            "--spec",
            spec.to_str().unwrap(),
            "--retries",
            "0",
            "--timeout-ms",
            "500",
            "-o",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(8), "stderr: {}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains(&vacant),
        "the diagnostic must name the dead shard: {}",
        stderr_of(&out)
    );
    assert!(
        !out_path.exists(),
        "a sweep that never started must not write a report"
    );

    shutdown(good);
}

#[test]
fn shard_death_mid_sweep_exits_9_with_a_complete_report() {
    let good = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("good shard");
    let evil = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            fault_plan: Some(FaultPlan::parse("drop@0..100000").expect("plan parses")),
            ..ServiceConfig::default()
        },
    )
    .expect("evil shard");
    let spec = spec_file("degraded-spec.json");
    let out_path = tmp("degraded-sweep.json");

    let out = bfsim()
        .args([
            "sweep",
            "--shards",
            &format!("{},{}", good.addr(), evil.addr()),
            "--spec",
            spec.to_str().unwrap(),
            "--retries",
            "0",
            "-o",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(9), "stderr: {}", stderr_of(&out));

    // Degraded is not incomplete: the report is on disk with one result
    // for every cell in the spec.
    let report = parse_report(&out_path);
    assert_eq!(
        report.field("degraded").expect("degraded"),
        &serde::Value::Bool(true)
    );
    assert_eq!(cells_in(&report), 12);
    assert!(report
        .field("failed")
        .and_then(|f| f.as_array())
        .expect("failed")
        .is_empty());

    shutdown(good);
    shutdown(evil);
}

#[test]
fn healthy_fleet_exits_0() {
    let a = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("shard a");
    let b = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("shard b");
    let spec = spec_file("healthy-spec.json");
    let out_path = tmp("healthy-sweep.json");

    let out = bfsim()
        .args([
            "sweep",
            "--shards",
            &format!("{},{}", a.addr(), b.addr()),
            "--spec",
            spec.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));

    let report = parse_report(&out_path);
    assert_eq!(
        report.field("degraded").expect("degraded"),
        &serde::Value::Bool(false)
    );
    assert_eq!(cells_in(&report), 12);

    shutdown(a);
    shutdown(b);
}
