//! Exit-code taxonomy regressions for `bfsim sweep`: 8 = a shard was
//! unreachable at startup (nothing ran), 9 = the sweep completed but
//! degraded (a shard was dead at sweep end, its work redistributed), 6 =
//! a `--resume` journal that does not match the re-planned sweep, 130 =
//! interrupted by SIGINT/SIGTERM (journal flushed, resume hint printed),
//! and 0 for a clean fleet — including a crashed-then-resumed sweep,
//! whose `--canonical-out` projection must be byte-identical to an
//! undisturbed run's. Drives the real binary the way CI does, against
//! in-process daemons.

use backfill_sim::SchedulerKind;
use bench_lib::sweep::{SweepSpec, TraceModel};
use sched::Policy;
use service::{Client, FaultPlan, Server, ServiceConfig};
use std::path::PathBuf;
use std::process::{Command, Output};
use workload::EstimateModel;

fn bfsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bfsim"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfsim-sweep-exit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// 12 fast cells (2 seeds × 2 kinds × 3 policies) on small traces.
fn spec_file(name: &str) -> PathBuf {
    spec_file_with(name, vec![7, 8])
}

fn spec_file_with(name: &str, seeds: Vec<u64>) -> PathBuf {
    let spec = SweepSpec {
        models: vec![TraceModel::Ctc],
        jobs: 80,
        seeds,
        estimates: vec![EstimateModel::Exact],
        estimate_seeds: vec![1],
        loads: vec![Some(0.9)],
        kinds: vec![SchedulerKind::Easy, SchedulerKind::Conservative],
        policies: Policy::PAPER.to_vec(),
    };
    let path = tmp(name);
    std::fs::write(
        &path,
        serde_json::to_string(&spec).expect("spec serializes"),
    )
    .expect("write spec");
    path
}

fn parse_report(path: &PathBuf) -> serde::Value {
    serde_json::from_str(&std::fs::read_to_string(path).expect("report written"))
        .expect("report parses")
}

fn cells_in(report: &serde::Value) -> usize {
    report
        .field("cells")
        .and_then(|c| c.as_array())
        .expect("cells")
        .len()
}

fn shutdown(handle: service::ServerHandle) {
    Client::connect(handle.addr())
        .and_then(|mut c| c.shutdown())
        .expect("shutdown");
    handle.join();
}

#[test]
fn unreachable_shard_at_startup_exits_8() {
    let good = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("good shard");
    let vacant = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let spec = spec_file("unreachable-spec.json");
    let out_path = tmp("unreachable-sweep.json");

    let out = bfsim()
        .args([
            "sweep",
            "--shards",
            &format!("{},{vacant}", good.addr()),
            "--spec",
            spec.to_str().unwrap(),
            "--retries",
            "0",
            "--timeout-ms",
            "500",
            "-o",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(8), "stderr: {}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains(&vacant),
        "the diagnostic must name the dead shard: {}",
        stderr_of(&out)
    );
    assert!(
        !out_path.exists(),
        "a sweep that never started must not write a report"
    );

    shutdown(good);
}

#[test]
fn shard_death_mid_sweep_exits_9_with_a_complete_report() {
    let good = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("good shard");
    let evil = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            fault_plan: Some(FaultPlan::parse("drop@0..100000").expect("plan parses")),
            ..ServiceConfig::default()
        },
    )
    .expect("evil shard");
    let spec = spec_file("degraded-spec.json");
    let out_path = tmp("degraded-sweep.json");

    // --reprobe-ms 0 pins the pre-recovery semantics: the fault-planned
    // daemon is still *listening* after it "dies" (only its submits
    // drop), so the default reprobe would re-handshake and readmit it.
    let out = bfsim()
        .args([
            "sweep",
            "--shards",
            &format!("{},{}", good.addr(), evil.addr()),
            "--spec",
            spec.to_str().unwrap(),
            "--retries",
            "0",
            "--reprobe-ms",
            "0",
            "-o",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(9), "stderr: {}", stderr_of(&out));

    // Degraded is not incomplete: the report is on disk with one result
    // for every cell in the spec.
    let report = parse_report(&out_path);
    assert_eq!(
        report.field("degraded").expect("degraded"),
        &serde::Value::Bool(true)
    );
    assert_eq!(cells_in(&report), 12);
    assert!(report
        .field("failed")
        .and_then(|f| f.as_array())
        .expect("failed")
        .is_empty());

    shutdown(good);
    shutdown(evil);
}

#[test]
fn resume_against_a_mismatched_plan_exits_6() {
    let shard = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("shard");
    let spec_a = spec_file_with("resume-mismatch-a.json", vec![7, 8]);
    let spec_b = spec_file_with("resume-mismatch-b.json", vec![9, 10]);
    let journal = tmp("resume-mismatch.jsonl");

    let seeded = bfsim()
        .args([
            "sweep",
            "--shards",
            &shard.addr().to_string(),
            "--spec",
            spec_a.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "-o",
            tmp("resume-mismatch-seed.json").to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(
        seeded.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&seeded)
    );

    // Same journal, different sweep: refuse before dispatching anything.
    let out_path = tmp("resume-mismatch-out.json");
    let out = bfsim()
        .args([
            "sweep",
            "--shards",
            &shard.addr().to_string(),
            "--spec",
            spec_b.to_str().unwrap(),
            "--resume",
            journal.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(6), "stderr: {}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("plan"),
        "the diagnostic must name the plan mismatch: {}",
        stderr_of(&out)
    );
    assert!(
        !out_path.exists(),
        "a refused resume must not write a report"
    );

    shutdown(shard);
}

#[test]
fn canonical_projection_survives_a_crash_and_resume_byte_for_byte() {
    let a = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("shard a");
    let b = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("shard b");
    let fleet = format!("{},{}", a.addr(), b.addr());
    let spec = spec_file("canonical-spec.json");
    let journal = tmp("canonical.jsonl");
    let canon_ref = tmp("canonical-ref.json");

    let reference = bfsim()
        .args([
            "sweep",
            "--shards",
            &fleet,
            "--spec",
            spec.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--canonical-out",
            canon_ref.to_str().unwrap(),
            "-o",
            tmp("canonical-ref-sweep.json").to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(
        reference.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&reference)
    );

    // Forge the crash: keep the plan header plus the first 4 cell
    // records, exactly what a coordinator SIGKILLed mid-sweep leaves.
    let text = std::fs::read_to_string(&journal).expect("read journal");
    let partial: String = text.lines().take(5).map(|l| format!("{l}\n")).collect();
    let cut = tmp("canonical-cut.jsonl");
    std::fs::write(&cut, partial).expect("write partial journal");

    let canon_resumed = tmp("canonical-resumed.json");
    let resumed = bfsim()
        .args([
            "sweep",
            "--shards",
            &fleet,
            "--spec",
            spec.to_str().unwrap(),
            "--resume",
            cut.to_str().unwrap(),
            "--canonical-out",
            canon_resumed.to_str().unwrap(),
            "-o",
            tmp("canonical-resumed-sweep.json").to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&resumed)
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout).into_owned();
    assert!(
        stdout.contains("resume: 4/12"),
        "the resume must replay the 4 journaled cells: {stdout}"
    );

    let want = std::fs::read(&canon_ref).expect("reference canonical");
    let got = std::fs::read(&canon_resumed).expect("resumed canonical");
    assert_eq!(
        want, got,
        "the canonical projection must be byte-identical across crash+resume"
    );

    shutdown(a);
    shutdown(b);
}

/// SIGTERM mid-sweep: exit 130, journal flushed, resume hint printed —
/// and the printed resume actually finishes the sweep at exit 0.
#[cfg(unix)]
#[test]
fn sigterm_interrupts_with_exit_130_and_the_journal_resumes() {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    // A slow fleet (100 ms per submit, window 1) so the signal lands
    // mid-sweep: 12 cells never finish inside the kill window.
    let slow = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            fault_plan: Some(service::FaultPlan::parse("delay@0..100000=100ms").expect("plan")),
            ..ServiceConfig::default()
        },
    )
    .expect("slow shard");
    let spec = spec_file("sigterm-spec.json");
    let journal = tmp("sigterm.jsonl");
    let out_path = tmp("sigterm-sweep.json");

    let child = bfsim()
        .args([
            "sweep",
            "--shards",
            &slow.addr().to_string(),
            "--spec",
            spec.to_str().unwrap(),
            "--window",
            "1",
            "--journal",
            journal.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn bfsim");

    // Wait until at least one cell record hit the journal: by then the
    // signal handler is installed and the sweep is mid-flight.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let lines = std::fs::read_to_string(&journal)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sweep never journaled a cell"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    unsafe {
        kill(child.id() as i32, 15);
    }
    let out = child.wait_with_output().expect("bfsim exits");
    assert_eq!(out.status.code(), Some(130), "stderr: {}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("--resume"),
        "the interrupt diagnostic must print the resume hint: {}",
        stderr_of(&out)
    );

    let resumed = bfsim()
        .args([
            "sweep",
            "--shards",
            &slow.addr().to_string(),
            "--spec",
            spec.to_str().unwrap(),
            "--window",
            "1",
            "--resume",
            journal.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&resumed)
    );
    let report = parse_report(&out_path);
    assert_eq!(cells_in(&report), 12, "the resumed sweep covers the plan");

    shutdown(slow);
}

/// `bfsim shards` brings up a supervised fleet, answers handshakes, and
/// stops cleanly (exit 0) on SIGTERM.
#[cfg(unix)]
#[test]
fn shards_supervisor_serves_a_fleet_and_stops_on_sigterm() {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    let bfsimd = std::path::Path::new(env!("CARGO_BIN_EXE_bfsim"))
        .parent()
        .expect("bfsim has a parent dir")
        .join("bfsimd");
    if !bfsimd.exists() {
        // `cargo test -p coord` alone does not build the service crate's
        // daemon binary; the workspace test run does.
        eprintln!("skipping: {} not built", bfsimd.display());
        return;
    }
    let port = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").port()
    };
    let child = bfsim()
        .args([
            "shards",
            "--count",
            "1",
            "--base-port",
            &port.to_string(),
            "--bfsimd",
            bfsimd.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn bfsim shards");

    // The fleet is up once the child daemon answers a handshake.
    let addr = format!("127.0.0.1:{port}");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if Client::connect(&addr).and_then(|mut c| c.health()).is_ok() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "supervised bfsimd never came up on {addr}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    unsafe {
        kill(child.id() as i32, 15);
    }
    let out = child.wait_with_output().expect("bfsim shards exits");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.contains("--shards 127.0.0.1:"),
        "the supervisor must print the fleet flag for bfsim sweep: {stdout}"
    );
    assert!(
        stdout.contains("stopped"),
        "children are reported stopped after SIGTERM: {stdout}"
    );
}

#[test]
fn healthy_fleet_exits_0() {
    let a = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("shard a");
    let b = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("shard b");
    let spec = spec_file("healthy-spec.json");
    let out_path = tmp("healthy-sweep.json");

    let out = bfsim()
        .args([
            "sweep",
            "--shards",
            &format!("{},{}", a.addr(), b.addr()),
            "--spec",
            spec.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));

    let report = parse_report(&out_path);
    assert_eq!(
        report.field("degraded").expect("degraded"),
        &serde::Value::Bool(false)
    );
    assert_eq!(cells_in(&report), 12);

    shutdown(a);
    shutdown(b);
}
