//! The planner at sweep scale: a 100k+-cell spec expands, dedups, and
//! shards deterministically with a balanced assignment — pure planning,
//! no daemon involved (the issue's scale requirement for the planner
//! path; the full submit path is covered by the e2e tests on a small
//! grid).

use bench_lib::sweep::{SweepSpec, TraceModel};
use coord::Plan;
use sched::Policy;
use workload::EstimateModel;

/// 2 × 60 × 2 × 4 × 5 × 7 × 3 = 100_800 cells.
fn big_spec() -> SweepSpec {
    SweepSpec {
        models: vec![TraceModel::Ctc, TraceModel::Sdsc],
        jobs: 3_000,
        seeds: (1..=60).collect(),
        estimates: vec![EstimateModel::Exact, EstimateModel::systematic(3.0)],
        estimate_seeds: vec![1, 2, 3, 4],
        loads: vec![Some(0.5), Some(0.7), Some(0.9), Some(1.1), None],
        kinds: vec![
            backfill_sim::SchedulerKind::NoBackfill,
            backfill_sim::SchedulerKind::Conservative,
            backfill_sim::SchedulerKind::Easy,
            backfill_sim::SchedulerKind::Depth { depth: 4 },
            backfill_sim::SchedulerKind::Selective { threshold: 2.0 },
            backfill_sim::SchedulerKind::Slack { slack_factor: 0.5 },
            backfill_sim::SchedulerKind::Preemptive { threshold: 5.0 },
        ],
        policies: Policy::PAPER.to_vec(),
    }
}

#[test]
fn hundred_thousand_cells_plan_deterministically_and_balance() {
    let spec = big_spec();
    assert_eq!(spec.cell_count(), 100_800);
    let cells = spec.expand();
    assert_eq!(cells.len(), 100_800);

    let plan = Plan::new(&cells, 4);
    assert_eq!(plan.len(), 100_800, "the grid has no duplicate cells");
    assert_eq!(plan.duplicates(), 0);

    // Deterministic: a second planning of the same expansion agrees on
    // every hash and home.
    let again = Plan::new(&spec.expand(), 4);
    assert_eq!(plan.hashes, again.hashes);
    assert_eq!(plan.home, again.home);

    // Hash-mod assignment balances within ±20% of the ideal quarter.
    let ideal = cells.len() / 4;
    for shard in 0..4 {
        let assigned = plan.assigned_to(shard).len();
        assert!(
            (assigned as f64 - ideal as f64).abs() < ideal as f64 * 0.2,
            "shard {shard} got {assigned} of {} cells (ideal {ideal})",
            cells.len()
        );
    }

    // Homes are a pure function of the hash, so re-planning for a
    // different fleet size moves cells but never re-hashes them.
    let seven = Plan::new(&cells, 7);
    assert_eq!(seven.hashes, plan.hashes);
    for i in 0..seven.len() {
        assert_eq!(seven.home[i], (seven.hashes[i] % 7) as usize);
    }
}

#[test]
fn duplicate_heavy_input_collapses_before_dispatch() {
    let cells = bench_lib::sweep::tiny_spec().expand();
    // Repeat the whole grid three times: 18 inputs, 6 unique.
    let tripled: Vec<_> = cells
        .iter()
        .chain(cells.iter())
        .chain(cells.iter())
        .copied()
        .collect();
    let plan = Plan::new(&tripled, 2);
    assert_eq!(plan.len(), 6);
    assert_eq!(plan.duplicates(), 12);
    for (input, &unique) in plan.input_map.iter().enumerate() {
        assert_eq!(tripled[input], plan.cells[unique]);
    }
}
