//! Golden test: the canonical-config hash is a stable wire artifact.
//!
//! Shard assignment (`hash % shards`), cache affinity, and coordinator
//! dedup all assume that every process — today's and next release's —
//! hashes the same cell to the same 64-bit value. Pinning the tiny
//! grid's hashes as literals turns any silent change to
//! `canonical_json()` or the FNV constants into a loud test failure.
//! If this test breaks, bump the cache journal/protocol version and
//! re-pin deliberately: old journals and shard maps will not line up.

use backfill_sim::{RunConfig, Scenario, SchedulerKind, TraceSource};
use bench_lib::sweep::tiny_spec;
use sched::Policy;
use service::{Client, Server, ServiceConfig};
use workload::EstimateModel;

/// The tiny bench grid's hashes, in expansion order, as of protocol v2.
const TINY_GRID_HASHES: [u64; 6] = [
    0xfb5c_85da_109c_7eff, // Conservative / Fcfs
    0x9fd2_add6_5791_f062, // Conservative / Sjf
    0x15ca_1aea_eabb_d048, // Conservative / XFactor
    0xe8fd_5baa_1922_2dca, // Easy / Fcfs
    0xfe74_1358_77de_a299, // Easy / Sjf
    0x6cb3_b780_c915_ad13, // Easy / XFactor
];

#[test]
fn tiny_grid_hashes_are_pinned() {
    let cells = tiny_spec().expand();
    let hashes: Vec<u64> = cells.iter().map(|c| c.content_hash()).collect();
    assert_eq!(
        hashes,
        TINY_GRID_HASHES.to_vec(),
        "canonical-config hash changed — shard maps and cache journals \
         from older builds will no longer line up"
    );
    // The serialization under the hash is pinned too: key order, float
    // formatting, and enum spelling are all load-bearing.
    assert_eq!(
        cells[0].canonical_json(),
        "{\"kind\":\"Conservative\",\"policy\":\"Fcfs\",\
         \"scenario\":{\"estimate\":\"Exact\",\"estimate_seed\":1,\
         \"load\":0.9,\"source\":{\"Ctc\":{\"jobs\":3000,\"seed\":7}}}}"
    );
}

#[test]
fn two_daemons_hash_the_same_cells_identically() {
    let a = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("daemon a");
    let b = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("daemon b");
    let mut ca = Client::connect(a.addr()).expect("connect a");
    let mut cb = Client::connect(b.addr()).expect("connect b");

    // Small cells so the cross-process check stays fast; the pinned
    // literals above cover the bench grid itself.
    let cells: Vec<RunConfig> = [Policy::Fcfs, Policy::Sjf, Policy::XFactor]
        .into_iter()
        .map(|policy| RunConfig {
            scenario: Scenario {
                source: TraceSource::Ctc { jobs: 100, seed: 7 },
                estimate: EstimateModel::Exact,
                estimate_seed: 1,
                load: Some(0.9),
            },
            kind: SchedulerKind::Easy,
            policy,
        })
        .collect();

    for cell in &cells {
        let ra = ca.submit(cell).expect("submit a");
        let rb = cb.submit(cell).expect("submit b");
        let local = cell.content_hash();
        assert_eq!(
            ra.config_hash, local,
            "daemon a disagrees with the local hash"
        );
        assert_eq!(
            rb.config_hash, local,
            "daemon b disagrees with the local hash"
        );
        assert_eq!(
            ra.report.fingerprint, rb.report.fingerprint,
            "same hash, same schedule — anything else breaks dedup"
        );
    }

    ca.shutdown().expect("shutdown a");
    cb.shutdown().expect("shutdown b");
    a.join();
    b.join();
}
