//! Property torture for the sweep journal: arbitrary byte truncation
//! never loses a complete record (and resume is idempotent afterwards),
//! duplicated records resolve first-writer-wins, and a record whose
//! `config_hash` belongs to a different plan is rejected with its line
//! number — never silently replayed.

use coord::{CellDone, JournalError, Plan, SweepJournal};
use proptest::prelude::*;
use sched::Policy;
use workload::EstimateModel;

use backfill_sim::SchedulerKind;
use bench_lib::sweep::{SweepSpec, TraceModel};
use std::path::PathBuf;
use std::sync::OnceLock;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfsim-journal-torture-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

/// 4 fast cells, parameterized by seeds so two disjoint plans exist.
fn spec(seeds: Vec<u64>) -> SweepSpec {
    SweepSpec {
        models: vec![TraceModel::Ctc],
        jobs: 50,
        seeds,
        estimates: vec![EstimateModel::Exact],
        estimate_seeds: vec![1],
        loads: vec![Some(0.9)],
        kinds: vec![SchedulerKind::Easy],
        policies: vec![Policy::Fcfs, Policy::Sjf],
    }
}

/// Computed once: plan A with a fully journaled run (as text), plan B
/// (disjoint cells), and one valid record line written for plan B.
struct Fixture {
    plan_a: Plan,
    text_a: String,
    plan_b: Plan,
    foreign_line: String,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let journal_for = |name: &str, seeds: Vec<u64>, cells_to_log: usize| {
            let plan = Plan::new(&spec(seeds).expand(), 2);
            let path = tmp(name);
            let journal = SweepJournal::create(&path, &plan).expect("create journal");
            for index in 0..cells_to_log {
                let cfg = &plan.cells[index];
                journal
                    .append_done(&CellDone {
                        index,
                        config_hash: plan.hashes[index],
                        shard: index % 2,
                        stolen: false,
                        cached: false,
                        wall_ms: 1,
                        report: service::RunReport::from_schedule(cfg, &cfg.run()),
                    })
                    .expect("append");
            }
            let text = std::fs::read_to_string(&path).expect("read journal back");
            (plan, text)
        };
        let (plan_a, text_a) = journal_for("torture-a.jsonl", vec![7, 8], 4);
        let (plan_b, text_b) = journal_for("torture-b.jsonl", vec![9, 10], 1);
        let foreign_line = text_b
            .lines()
            .nth(1)
            .expect("plan B journal has one record")
            .to_string();
        Fixture {
            plan_a,
            text_a,
            plan_b,
            foreign_line,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cutting the journal at *any* byte offset keeps every record
    /// whose line survived intact: resume recovers `complete - 1` cells
    /// (minus the header), reports the exact torn-tail size, truncates
    /// the file to the good prefix, and a second resume of the
    /// truncated file drops nothing further.
    #[test]
    fn torn_tail_resume_recovers_exactly_the_complete_prefix(raw in 0u64..1_000_000) {
        let fix = fixture();
        let cut = (raw as usize) % (fix.text_a.len() + 1);
        let prefix = &fix.text_a.as_bytes()[..cut];
        let path = tmp(&format!("torn-{cut}.jsonl"));
        std::fs::write(&path, prefix).expect("write torn journal");

        // A line only counts once its newline is on disk.
        let complete = prefix.iter().filter(|&&b| b == b'\n').count();
        let good_len = prefix
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |at| at + 1);
        match SweepJournal::resume(&path, &fix.plan_a) {
            Ok((journal, replay)) => {
                prop_assert!(complete >= 1, "a missing header must not resume");
                prop_assert_eq!(replay.resolved(), complete - 1);
                prop_assert_eq!(replay.dropped_bytes as usize, cut - good_len);
                prop_assert_eq!(replay.truncated, cut != good_len);
                drop(journal);
                prop_assert_eq!(
                    std::fs::metadata(&path).expect("metadata").len() as usize,
                    good_len,
                    "the torn tail is cut from the file itself"
                );
                let (_, again) =
                    SweepJournal::resume(&path, &fix.plan_a).expect("second resume");
                prop_assert!(!again.truncated, "truncation is idempotent");
                prop_assert_eq!(again.resolved(), complete - 1);
            }
            Err(JournalError::MissingHeader) => prop_assert_eq!(
                complete, 0,
                "only a torn header line may fail the resume"
            ),
            Err(other) => prop_assert!(false, "unexpected resume error: {other}"),
        }
    }

    /// Re-appending already-present records (the crash window where a
    /// cell was journaled but the coordinator died before advancing)
    /// resolves first-writer-wins: the replay is unchanged and every
    /// extra copy is counted, never applied.
    #[test]
    fn duplicate_records_are_counted_not_replayed(
        picks in proptest::collection::vec(0u64..4, 1..8),
    ) {
        let fix = fixture();
        let lines: Vec<&str> = fix.text_a.lines().collect();
        let mut text: String = fix.text_a.clone();
        for pick in &picks {
            // lines[0] is the header; records live at 1..=4.
            text.push_str(lines[1 + *pick as usize]);
            text.push('\n');
        }
        let path = tmp(&format!("dupes-{}-{}.jsonl", picks.len(), picks[0]));
        std::fs::write(&path, &text).expect("write journal");

        let (_, replay) = SweepJournal::resume(&path, &fix.plan_a).expect("resume");
        prop_assert_eq!(replay.resolved(), fix.plan_a.len());
        prop_assert_eq!(replay.duplicates, picks.len() as u64);
        prop_assert!(!replay.truncated);
        // And inspect (plan-free) agrees on the counts.
        let stats = SweepJournal::inspect(&path).expect("inspect");
        prop_assert_eq!(stats.done, fix.plan_a.len());
        prop_assert_eq!(stats.duplicates, picks.len() as u64);
    }

    /// A checksum-valid record whose config_hash belongs to a different
    /// plan is a corrupt journal, not a skippable row: resume must
    /// refuse, naming the offending line.
    #[test]
    fn foreign_record_is_rejected_with_its_line_number(at in 0u64..5) {
        let fix = fixture();
        let at = at as usize; // record-boundary insertion point, 0..=4
        let mut text = String::new();
        for (i, line) in fix.text_a.lines().enumerate() {
            if i == at + 1 {
                text.push_str(&fix.foreign_line);
                text.push('\n');
            }
            text.push_str(line);
            text.push('\n');
        }
        if at == 4 {
            text.push_str(&fix.foreign_line);
            text.push('\n');
        }
        let path = tmp(&format!("foreign-{at}.jsonl"));
        std::fs::write(&path, &text).expect("write journal");

        match SweepJournal::resume(&path, &fix.plan_a) {
            Err(JournalError::BadRecord { line, why }) => {
                prop_assert_eq!(line, at + 2, "1-based line of the splice: {why}");
                prop_assert!(why.contains("config_hash"), "reason names the field: {why}");
            }
            Ok(_) => prop_assert!(false, "a foreign record must not resume"),
            Err(other) => prop_assert!(false, "unexpected resume error: {other}"),
        }
    }
}

/// The same journal resumed against the *wrong plan entirely* (plan B)
/// is a plan mismatch, pinned here next to the torture properties.
#[test]
fn wrong_plan_resume_is_a_plan_mismatch() {
    let fix = fixture();
    let path = tmp("wrong-plan.jsonl");
    std::fs::write(&path, &fix.text_a).expect("write journal");
    match SweepJournal::resume(&path, &fix.plan_b) {
        Err(JournalError::PlanMismatch { expected, found }) => {
            assert_eq!(found, fix.plan_a.content_hash());
            assert_eq!(expected, fix.plan_b.content_hash());
        }
        other => panic!("expected PlanMismatch, got {other:?}"),
    }
}
