//! Regression tests for `bfsim bench --baseline` failure handling.
//!
//! A bad baseline must fail *gracefully*: one logged diagnostic, a
//! distinct exit code from the taxonomy (2 usage, 3 connect, 4 busy,
//! 5 service, 6 bad data file, 7 fingerprint-parity violation), and —
//! crucially — *before* the sweep runs, never as a panic mid-way through
//! it. These tests drive the real binary (`CARGO_BIN_EXE_bfsim`) the way
//! CI does.

use backfill_sim::prelude::*;
use std::path::PathBuf;
use std::process::{Command, Output};

fn bfsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bfsim"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfsim-bench-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The sweep must not have started: bench cells log at info and print
/// per-cell results to stdout, so an aborted-before-sweep run has none.
fn assert_no_sweep_ran(out: &Output) {
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("ev/s"),
        "sweep output present, bench ran before failing: {stdout}"
    );
}

#[test]
fn missing_baseline_file_exits_6_before_the_sweep() {
    let out = bfsim()
        .args([
            "bench",
            "--tiny",
            "--baseline",
            "/nonexistent/никогда/BENCH.json",
            "-o",
            tmp("missing-out.json").to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(6), "stderr: {}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("reading baseline"),
        "want one diagnostic naming the failure, got: {}",
        stderr_of(&out)
    );
    assert_no_sweep_ran(&out);
}

#[test]
fn truncated_baseline_json_exits_6_before_the_sweep() {
    // A torn write: valid prefix of a real report, cut mid-document.
    let path = tmp("truncated.json");
    std::fs::write(&path, r#"{"version": 4, "tool": "bfsim bench", "tiny": false, "cells": [{"label": "CTC Cons/FCFS rho=0.9 est=exact", "config"#)
        .expect("write truncated baseline");
    let out = bfsim()
        .args([
            "bench",
            "--tiny",
            "--baseline",
            path.to_str().unwrap(),
            "-o",
            tmp("truncated-out.json").to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(6), "stderr: {}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("parsing baseline"),
        "want a parse diagnostic, got: {}",
        stderr_of(&out)
    );
    assert_no_sweep_ran(&out);
}

/// A structurally valid report whose single cell reproduces `config` with
/// an arbitrary fingerprint — enough to exercise cell-set matching.
fn report_with_cell(config: &RunConfig, fingerprint: u64) -> String {
    format!(
        r#"{{"version": 4, "tool": "bfsim bench", "tiny": true,
            "cells": [{{"label": "crafted", "config": {}, "fingerprint": {fingerprint},
                        "jobs": 1, "events": 10, "wall_ms": 1.0,
                        "events_per_sec": 10000.0, "profile": null}}],
            "baseline": null, "comparison": []}}"#,
        serde_json::to_string(config).expect("config serializes")
    )
}

/// A config deliberately outside the pinned sweep (job count no sweep
/// cell uses).
fn foreign_config() -> RunConfig {
    RunConfig {
        scenario: Scenario::high_load(TraceSource::Ctc { jobs: 77, seed: 1 }),
        kind: SchedulerKind::Easy,
        policy: Policy::Fcfs,
    }
}

/// A config that IS in the tiny sweep (see `bench_cells`).
fn tiny_sweep_config() -> RunConfig {
    RunConfig {
        scenario: Scenario::high_load(TraceSource::Ctc {
            jobs: 3_000,
            seed: 7,
        }),
        kind: SchedulerKind::Conservative,
        policy: Policy::Fcfs,
    }
}

#[test]
fn disjoint_cell_set_exits_6_before_the_sweep() {
    let path = tmp("disjoint.json");
    std::fs::write(&path, report_with_cell(&foreign_config(), 1)).expect("write baseline");
    let out = bfsim()
        .args([
            "bench",
            "--tiny",
            "--baseline",
            path.to_str().unwrap(),
            "-o",
            tmp("disjoint-out.json").to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(6), "stderr: {}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("shares no cell"),
        "want a cell-set diagnostic, got: {}",
        stderr_of(&out)
    );
    assert_no_sweep_ran(&out);
}

#[test]
fn enforce_parity_with_incomplete_baseline_exits_6_before_the_sweep() {
    // One real sweep cell present, five missing: plain --baseline would
    // proceed with partial comparison, --enforce-parity must refuse.
    let path = tmp("incomplete.json");
    std::fs::write(&path, report_with_cell(&tiny_sweep_config(), 1)).expect("write baseline");
    let out = bfsim()
        .args([
            "bench",
            "--tiny",
            "--enforce-parity",
            "--baseline",
            path.to_str().unwrap(),
            "-o",
            tmp("incomplete-out.json").to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(6), "stderr: {}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("missing"),
        "want a missing-cells diagnostic, got: {}",
        stderr_of(&out)
    );
    assert_no_sweep_ran(&out);
}

#[test]
fn enforce_parity_without_baseline_is_a_usage_error() {
    let out = bfsim()
        .args([
            "bench",
            "--tiny",
            "--enforce-parity",
            "-o",
            tmp("noparity-out.json").to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert_no_sweep_ran(&out);
}

#[test]
fn fingerprint_mismatch_under_enforce_parity_exits_7_after_writing_the_report() {
    // Run the real tiny sweep once to get a genuine report...
    let good = tmp("parity-base.json");
    let out = bfsim()
        .args([
            "bench",
            "--tiny",
            "--reps",
            "1",
            "-o",
            good.to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));

    // ...tamper exactly one fingerprint to simulate a decision change...
    let text = std::fs::read_to_string(&good).expect("read report");
    let needle = r#""fingerprint": "#;
    let at = text.find(needle).expect("report has fingerprints") + needle.len();
    let end = text[at..]
        .find([',', '\n'])
        .map(|i| at + i)
        .expect("fingerprint value terminates");
    let tampered_path = tmp("parity-tampered.json");
    let tampered = format!("{}12345{}", &text[..at], &text[end..]);
    std::fs::write(&tampered_path, tampered).expect("write tampered baseline");

    // ...and the parity gate must fail with exit 7, report still written.
    let report_out = tmp("parity-out.json");
    let out = bfsim()
        .args([
            "bench",
            "--tiny",
            "--reps",
            "1",
            "--enforce-parity",
            "--baseline",
            tampered_path.to_str().unwrap(),
            "-o",
            report_out.to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(7), "stderr: {}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("changed schedule fingerprint"),
        "want a parity diagnostic, got: {}",
        stderr_of(&out)
    );
    let written = std::fs::read_to_string(&report_out).expect("report written despite exit 7");
    assert!(written.contains("\"comparison\""));

    // The untampered baseline passes the same gate: the new code changes
    // no scheduling decision on these cells.
    let out = bfsim()
        .args([
            "bench",
            "--tiny",
            "--reps",
            "1",
            "--enforce-parity",
            "--baseline",
            good.to_str().unwrap(),
            "-o",
            tmp("parity-clean-out.json").to_str().unwrap(),
        ])
        .output()
        .expect("spawn bfsim");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
}
