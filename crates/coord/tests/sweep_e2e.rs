//! Sharded sweep end-to-end over real TCP: two in-process daemons, one
//! coordinator. Per-cell fingerprints must be byte-identical to a
//! sequential `run_all` of the same cells, every cell resolves exactly
//! once, a second pass is answered entirely from the shards' caches
//! (cache affinity through hash-home assignment), and an idle shard
//! steals from a deliberately slowed straggler.

use backfill_sim::{run_all, SchedulerKind};
use bench_lib::sweep::{SweepSpec, TraceModel};
use coord::{run_sweep, Plan, SweepOptions};
use sched::Policy;
use service::{Client, FaultPlan, Server, ServiceConfig};
use workload::EstimateModel;

/// 2 models × 2 seeds × 2 kinds × 3 policies = 24 small, fast cells.
fn small_spec() -> SweepSpec {
    SweepSpec {
        models: vec![TraceModel::Ctc, TraceModel::Sdsc],
        jobs: 120,
        seeds: vec![7, 8],
        estimates: vec![EstimateModel::Exact],
        estimate_seeds: vec![1],
        loads: vec![Some(0.9)],
        kinds: vec![SchedulerKind::Easy, SchedulerKind::Conservative],
        policies: Policy::PAPER.to_vec(),
    }
}

fn shutdown(addr: std::net::SocketAddr) {
    Client::connect(addr)
        .and_then(|mut c| c.shutdown())
        .expect("shutdown");
}

fn assert_exactly_once(cells: &[coord::CellDone], expected: usize) {
    let mut indices: Vec<usize> = cells.iter().map(|c| c.index).collect();
    indices.sort_unstable();
    assert_eq!(
        indices,
        (0..expected).collect::<Vec<_>>(),
        "every unique cell must be resolved exactly once"
    );
}

#[test]
fn sharded_sweep_matches_sequential_run_all_and_reuses_shard_caches() {
    let a = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("shard a");
    let b = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("shard b");
    let shards = [a.addr().to_string(), b.addr().to_string()];
    let cells = small_spec().expand();
    let plan = Plan::new(&cells, shards.len());

    // Stealing off so placement is exactly the plan's home map — that
    // is what makes the second pass provably cache-affine. Spans on:
    // the collected forest is validated below.
    let opts = SweepOptions {
        steal: false,
        spans: true,
        ..SweepOptions::default()
    };
    let outcome = run_sweep(&shards, &cells, &opts).expect("sweep runs");
    assert!(outcome.failed.is_empty(), "failed: {:?}", outcome.failed);
    assert!(!outcome.degraded);
    assert_exactly_once(&outcome.cells, cells.len());

    // Byte-identical per-cell fingerprints vs the serial reference.
    let serial = run_all(&cells, None);
    for done in &outcome.cells {
        assert_eq!(
            done.report.fingerprint,
            serial[done.index].schedule.fingerprint(),
            "cell {} diverged from the sequential run",
            done.index
        );
        assert_eq!(done.config_hash, plan.hashes[done.index]);
        assert_eq!(done.shard, plan.home[done.index], "no-steal placement");
        assert!(!done.cached, "first pass must simulate");
    }
    for summary in &outcome.shards {
        assert!(
            summary.completed > 0,
            "both shards must share the work: {summary:?}"
        );
        assert!(!summary.dead);
    }

    // Aggregation merged both shards' state.
    let stats = outcome.stats.as_ref().expect("stats aggregated");
    assert_eq!(stats.completed, cells.len() as u64);
    assert_eq!(stats.cache_misses, cells.len() as u64);
    let metrics = outcome.metrics_json.as_ref().expect("metrics aggregated");
    assert!(metrics.contains("\"coord.cells\":24"), "{metrics}");
    assert!(metrics.contains("service.submitted"), "{metrics}");

    // Distributed tracing: every cell's spans — coordinator roots and
    // attempts plus daemon-side cache/pool/phase spans — must merge
    // into exactly one rooted tree per cell.
    let merged: Vec<obs::SpanRecord> = outcome
        .spans
        .iter()
        .flat_map(|s| s.spans.iter().cloned())
        .collect();
    let forest = obs::validate_forest(&merged).expect("span forest is well-formed");
    assert_eq!(
        forest.traces,
        cells.len(),
        "one trace per unique cell, no more, no less"
    );
    let trace_ids: std::collections::HashSet<u64> = merged.iter().map(|s| s.trace_id).collect();
    let expected_ids: std::collections::HashSet<u64> = plan.hashes.iter().copied().collect();
    assert_eq!(trace_ids, expected_ids, "trace ids are the plan's hashes");
    assert!(
        merged.iter().any(|s| s.name == "pool.run"),
        "daemon-side spans must have joined the coordinator's traces"
    );

    // Second pass: same plan, same homes — every cell is a cache hit on
    // the shard that already memoized it.
    let again = run_sweep(&shards, &cells, &opts).expect("second sweep runs");
    assert_exactly_once(&again.cells, cells.len());
    for done in &again.cells {
        assert!(
            done.cached,
            "cell {} missed the cache on its home shard",
            done.index
        );
        assert_eq!(
            done.report.fingerprint,
            serial[done.index].schedule.fingerprint(),
            "cached replay must be byte-identical"
        );
    }
    let cached_spans: Vec<obs::SpanRecord> = again
        .spans
        .iter()
        .flat_map(|s| s.spans.iter().cloned())
        .collect();
    let cached_forest =
        obs::validate_forest(&cached_spans).expect("cached pass forest is well-formed");
    assert_eq!(cached_forest.traces, cells.len());
    assert!(
        cached_spans.iter().any(|s| s.name == "cache.hit"),
        "the cache-affine pass must record cache.hit spans"
    );

    shutdown(a.addr());
    shutdown(b.addr());
    a.join();
    b.join();
}

#[test]
fn idle_shard_steals_from_a_straggler() {
    // Shard B serves every submit 150 ms late; shard A is healthy. With
    // a window of 2, B's home queue stays deep while A drains and goes
    // idle — A must steal the tail of B's queue.
    let a = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("fast shard");
    let b = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            fault_plan: Some(FaultPlan::parse("delay@0..100000=150ms").expect("plan parses")),
            ..ServiceConfig::default()
        },
    )
    .expect("slow shard");
    let shards = [a.addr().to_string(), b.addr().to_string()];
    let cells = small_spec().expand();
    let plan = Plan::new(&cells, shards.len());
    let slow_home = plan.assigned_to(1).len();
    assert!(
        slow_home > 3,
        "precondition: the straggler must be homed enough work to steal \
         (got {slow_home} of {} cells)",
        cells.len()
    );

    let opts = SweepOptions {
        window: Some(2),
        steal: true,
        ..SweepOptions::default()
    };
    let outcome = run_sweep(&shards, &cells, &opts).expect("sweep runs");
    assert!(outcome.failed.is_empty(), "failed: {:?}", outcome.failed);
    assert!(!outcome.degraded, "a slow shard is not a dead shard");
    assert_exactly_once(&outcome.cells, cells.len());
    assert!(
        outcome.steals > 0,
        "the idle shard never stole from the straggler: {:?}",
        outcome.shards
    );

    // Stolen or not, every fingerprint still matches the serial run.
    let serial = run_all(&cells, None);
    for done in &outcome.cells {
        assert_eq!(
            done.report.fingerprint,
            serial[done.index].schedule.fingerprint()
        );
    }

    shutdown(a.addr());
    shutdown(b.addr());
    a.join();
    b.join();
}
