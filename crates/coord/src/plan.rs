//! Deterministic sweep planning: dedup cells, hash them, assign homes.
//!
//! A [`Plan`] is a pure function of the input cell list and the shard
//! count. Two coordinators (or one coordinator twice) planning the same
//! sweep against the same fleet agree on every cell index, hash, and
//! home shard — which is what makes resubmission idempotent and the
//! shard caches affine across runs.

use backfill_sim::RunConfig;
use std::collections::HashMap;

/// The expanded, deduplicated sweep: what the dispatcher executes.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Unique cells, in first-appearance order of the input list.
    pub cells: Vec<RunConfig>,
    /// `cells[i].content_hash()`, precomputed (FNV-1a 64 over the
    /// canonical config JSON — the daemon derives the identical value
    /// independently, see the cross-process golden test).
    pub hashes: Vec<u64>,
    /// Home shard per cell: `hashes[i] % shards`.
    pub home: Vec<usize>,
    /// For each *input* cell, the index of its unique cell — duplicate
    /// inputs map to the same index, so callers can reconstruct a
    /// result-per-input view.
    pub input_map: Vec<usize>,
    /// Shard count the homes were computed for.
    pub shards: usize,
}

impl Plan {
    /// Plan `cells` across `shards` endpoints.
    ///
    /// Duplicates are collapsed by **canonical JSON**, not by the hash,
    /// so even a (cosmically unlikely) FNV collision cannot conflate
    /// two distinct configs; the hash is only the shard-assignment and
    /// dedup *label*.
    ///
    /// # Panics
    /// If `shards == 0`.
    pub fn new(cells: &[RunConfig], shards: usize) -> Plan {
        assert!(shards > 0, "a sweep needs at least one shard");
        let mut unique: Vec<RunConfig> = Vec::new();
        let mut hashes: Vec<u64> = Vec::new();
        let mut input_map: Vec<usize> = Vec::with_capacity(cells.len());
        let mut seen: HashMap<String, usize> = HashMap::new();
        for cell in cells {
            let canonical = cell.canonical_json();
            let index = *seen.entry(canonical).or_insert_with(|| {
                unique.push(*cell);
                hashes.push(cell.content_hash());
                unique.len() - 1
            });
            input_map.push(index);
        }
        let home = hashes
            .iter()
            .map(|&h| (h % shards as u64) as usize)
            .collect();
        Plan {
            cells: unique,
            hashes,
            home,
            input_map,
            shards,
        }
    }

    /// Unique cells to execute.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when there is nothing to execute.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Input cells that collapsed onto an earlier identical cell.
    pub fn duplicates(&self) -> usize {
        self.input_map.len() - self.cells.len()
    }

    /// Cells homed on `shard`, in plan order.
    pub fn assigned_to(&self, shard: usize) -> Vec<usize> {
        (0..self.cells.len())
            .filter(|&i| self.home[i] == shard)
            .collect()
    }

    /// Stable identity of the planned cell *set*: FNV-1a over the unique
    /// cells' content hashes in plan order. This is what the sweep
    /// journal's plan header pins and what `--resume` verifies — two
    /// plans agree on it iff they agree on every cell index and hash.
    /// The shard count is deliberately excluded: cell indices do not
    /// depend on it, so a journal written against one fleet can be
    /// resumed against a larger or smaller one.
    pub fn content_hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.hashes.len() * 8);
        for h in &self.hashes {
            bytes.extend_from_slice(&h.to_le_bytes());
        }
        backfill_sim::canon::fnv1a_64(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bench_lib::sweep::tiny_spec;

    #[test]
    fn dedup_collapses_identical_cells_and_keeps_order() {
        let mut cells = tiny_spec().expand();
        let first = cells[0];
        cells.push(first); // duplicate of cell 0
        let plan = Plan::new(&cells, 2);
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.duplicates(), 1);
        assert_eq!(plan.input_map[6], 0, "duplicate maps to the original");
        assert_eq!(plan.cells[0], first);
    }

    #[test]
    fn homes_are_hash_mod_shards_and_cover_every_cell() {
        let plan = Plan::new(&tiny_spec().expand(), 3);
        for i in 0..plan.len() {
            assert_eq!(plan.home[i], (plan.hashes[i] % 3) as usize);
            assert_eq!(plan.hashes[i], plan.cells[i].content_hash());
        }
        let total: usize = (0..3).map(|s| plan.assigned_to(s).len()).sum();
        assert_eq!(total, plan.len());
    }

    #[test]
    fn planning_is_deterministic() {
        let cells = tiny_spec().expand();
        let a = Plan::new(&cells, 4);
        let b = Plan::new(&cells, 4);
        assert_eq!(a.hashes, b.hashes);
        assert_eq!(a.home, b.home);
        assert_eq!(a.input_map, b.input_map);
    }
}
