//! `bfsim` — the command-line front end of the simulator.
//!
//! ```text
//! bfsim simulate [WORKLOAD] [SCHED] [--gantt] [--series] [--fairness]
//!                [--trace-out OUT.jsonl]
//! bfsim generate [WORKLOAD] -o OUT.swf
//! bfsim inspect FILE.swf
//! bfsim compare [WORKLOAD] [--seeds a,b,c]
//! bfsim submit [WORKLOAD] [SCHED] [--addr HOST:PORT]    # via bfsimd
//! bfsim stats [--addr HOST:PORT]
//! bfsim metrics [--addr HOST:PORT]
//! bfsim health [--addr HOST:PORT]
//! bfsim shutdown [--addr HOST:PORT]
//! bfsim bench [-o OUT.json] [--baseline OLD.json] [--enforce-parity]
//!             [--tiny] [--reps N] [--trace-out OUT.jsonl]
//! bfsim sweep --shards H:P,H:P,... (--spec FILE.json | --tiny | --bench)
//!             [--window N] [--no-steal] [--max-requeues N] [--spans]
//!             [--journal J.jsonl | --resume J.jsonl] [--reprobe-ms N]
//!             [--canonical-out CANON.json] [-o OUT.json]
//! bfsim shards [--count N] [--base-port P] [--bfsimd PATH]
//!              [--cache-journal-dir DIR] [--fault-plan SPEC]
//!              [--restart-limit N] [--stable-ms N]
//! bfsim timeline [--in SWEEP.json] [-o TIMELINE.json]
//! bfsim coord-status [--shards H:P,H:P,...] [--journal J.jsonl]
//!                    [--in SWEEP.json]
//!
//! Every command also accepts `--log-level SPEC` (the `BFSIM_LOG`
//! filter grammar, e.g. `info` or `warn,sched=debug`), `--log-json`
//! (JSON-lines log records instead of text), and `--log-elapsed`
//! (monotonic `elapsed_ms` on every record). The flag wins over the
//! environment; without either, only errors are logged.
//!
//! `metrics` accepts `--format json|prom`: `json` (default) prints the
//! canonical registry document, `prom` the Prometheus text exposition
//! of the same state, scrape-ready.
//!
//! `sweep --spans` traces the sweep: one root span per cell on the
//! coordinator, an `attempt` span per submission, trace context
//! propagated to the shards (whose cache/pool/phase spans parent into
//! the same trace), and everything drained into the report's `spans`
//! field. `timeline` then merges a span-bearing report into Chrome
//! trace-event JSON (chrome://tracing, Perfetto), validating first that
//! every cell's spans form exactly one rooted tree (exit 6 otherwise).
//!
//! `--trace-out` records the run's scheduling decisions (arrivals,
//! reservations, backfills, starts, completions, compressions,
//! preemptions) to a JSONL file — see DESIGN.md §12 for the event
//! schema and `crates/bench`'s analyzer for consuming it. Recording is
//! strictly observational: the schedule fingerprint is identical with
//! and without it.
//!
//! WORKLOAD: --model ctc|sdsc|lublin | --trace FILE.swf [--lenient]
//!           --jobs N --seed S --load RHO
//!           --estimate exact|systematic:R|user
//! SCHED:    --scheduler nobf|cons|cons-reanchor|cons-headstart|cons-none|
//!                       easy|selective:T|slack:F|depth:K|preemptive:T
//!           --policy fcfs|sjf|xf|ljf|widest
//! ```
//!
//! The daemon commands (`submit`/`stats`/`metrics`/`health`/`shutdown`)
//! talk to a running `bfsimd` (default `127.0.0.1:7411`) through the
//! resilient client: per-request deadline `--timeout-ms N` (0 disables),
//! retry budget `--retries N` with seeded decorrelated-jitter backoff
//! (`--retry-base-ms N`, `--retry-seed S`). On failure they exit
//! nonzero with a one-line diagnostic through the obs logger: 3 for
//! connection/timeout failures, 4 when the daemon is busy or draining,
//! 5 for service/protocol errors. `submit` only supports the
//! model-generated workloads (`ctc`/`sdsc`) because the daemon receives
//! a declarative `RunConfig`, not a trace file.
//!
//! `--lenient` (with `--trace FILE.swf`) skips malformed trace lines
//! and logs a per-field breakdown instead of aborting the parse.
//!
//! `bench` runs the **pinned** throughput sweep (fixed traces, seeds,
//! loads, scheduler kinds) serially, and writes a machine-readable JSON
//! report: per-cell wall time, events processed, events/sec, schedule
//! fingerprint, and the scheduler's profile/queue operation counters.
//! With `--baseline OLD.json`, the old report's cells are embedded in the
//! new file alongside per-cell speedups and fingerprint-parity flags, so a
//! perf claim and its decision-preservation proof travel together. The
//! baseline is loaded and validated *before* the sweep: a missing or
//! corrupt file, or one whose cell set shares nothing with the current
//! sweep, exits 6 with one logged diagnostic (extending the daemon exit
//! taxonomy above: 2 usage, 3 connect, 4 busy, 5 service, 6 bad data
//! file, 7 parity violation). `--enforce-parity` additionally requires
//! every sweep cell to exist in the baseline and exits 7 — after writing
//! the report — if any schedule fingerprint differs: decision-neutrality
//! as a CI gate. `--tiny` shrinks the sweep to a six-cell subset of the
//! full grid, in seconds, for CI smoke testing.
//!
//! `sweep` fans one sweep out across many `bfsimd` shards (see
//! DESIGN.md §15): cells are assigned to shards by canonical config
//! hash, idle shards steal from stragglers, a dying shard's queue is
//! redistributed, and the merged report carries exactly one result per
//! unique cell with per-cell fingerprints byte-identical to a serial
//! run. The cell grid comes from `--tiny` (the pinned six-cell bench
//! grid) or `--spec FILE.json` (a serialized `SweepSpec`; a missing or
//! invalid file exits 6). Exit codes extend the taxonomy again: 8 when
//! a shard fails the startup `capabilities` handshake (nothing ran), 9
//! when the sweep *completed* — every cell resolved, report written —
//! but degraded because at least one shard died mid-sweep.
//! `coord-status` prints one row per shard (capabilities, queue depth,
//! cache hit rate, journal replay) and exits 3 only when **no** shard
//! is reachable. With `--journal J.jsonl` it additionally summarizes a
//! sweep journal offline (cells done, duplicates, torn-tail bytes), and
//! with `--in SWEEP.json` a finished report's recovery accounting
//! (deaths, rejoins, replayed cells); either makes `--shards` optional.
//!
//! Crash recovery (see DESIGN.md §18): `sweep --journal J.jsonl`
//! appends a checksummed record per resolved cell; after a coordinator
//! crash, `sweep --resume J.jsonl` (same spec and flags) replays the
//! journal, marks journaled cells done without dispatching them, and
//! runs only the remainder. A resume against a journal written for a
//! *different* plan exits 6. `--canonical-out CANON.json` writes the
//! deterministic projection of the sweep (plan-ordered cells, config
//! hashes, schedule fingerprints — no wall times or shard placement),
//! byte-identical between an undisturbed run and a crashed-then-resumed
//! one. SIGINT/SIGTERM interrupt a sweep cleanly: the journal is
//! already flushed per record, a resume hint is printed, and the exit
//! code is 130. `--reprobe-ms N` (default 1000, 0 disables) makes the
//! coordinator periodically re-handshake shards that died mid-sweep and
//! re-admit any that answer again — a shard that was SIGKILLed and then
//! respawned by `bfsim shards` rejoins the sweep, and a sweep whose
//! every death was healed by a rejoin exits 0, not 9.
//!
//! `shards` spawns `--count` local `bfsimd` children on consecutive
//! ports and babysits them: a crashed child is restarted under seeded
//! decorrelated-jitter backoff, and a child that crash-loops (more than
//! `--restart-limit` consecutive sub-`--stable-ms` lifetimes) trips its
//! breaker and is abandoned. SIGINT/SIGTERM stops the fleet (exit 0);
//! if every child breaks, the supervisor gives up with exit 5.

use backfill_sim::prelude::*;
use bench_lib::sweep::{bench_cells, SweepSpec};
use coord::{run_sweep_recoverable, SweepError, SweepJournal, SweepOptions, SweepReplay};
use metrics::{fairness, queue_depth_series, utilization_series, viz};
use obs::trace::Recorder;
use sched::ProfileStats;
use serde::{Deserialize, Serialize};
use service::{
    BreakerPolicy, ChildStatus, ClientError, ClientOptions, ResilientClient, RetryPolicy,
    SupervisorSpec,
};
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use workload::models::LublinModel;
use workload::{load::scale_to_load, swf, TraceStats};

fn die(msg: &str) -> ! {
    obs::error!(target: "bfsim", "{msg}");
    std::process::exit(2);
}

/// One-line diagnostic + meaningful exit code for a failed daemon call:
/// 3 = could not reach the daemon (connect/timeout), 4 = the daemon is
/// there but refusing work (busy/draining), 5 = the request itself
/// failed (service error, protocol violation, corrupt frame).
fn die_client(context: &str, addr: &str, err: ClientError) -> ! {
    fn class(err: &ClientError) -> i32 {
        match err {
            ClientError::Io(_) | ClientError::Timeout(_) => 3,
            ClientError::Busy | ClientError::ShuttingDown => 4,
            // An exhausted retry budget takes its terminal error's class.
            ClientError::Exhausted { last, .. } => class(last),
            _ => 5,
        }
    }
    fn refused(err: &ClientError) -> bool {
        match err {
            ClientError::Io(e) => e.kind() == std::io::ErrorKind::ConnectionRefused,
            ClientError::Exhausted { last, .. } => refused(last),
            _ => false,
        }
    }
    let hint = if refused(&err) {
        format!(" (is bfsimd running at {addr}?)")
    } else {
        String::new()
    };
    obs::error!(target: "bfsim", "{context}: {err}{hint}");
    std::process::exit(class(&err));
}

/// One-line diagnostic + exit 6 for a bad data file handed to a local
/// command: a missing or corrupt `--baseline`, or a baseline whose cell
/// set has nothing in common with the current sweep. Distinct from usage
/// errors (2) and daemon failures (3/4/5) so CI can tell "you pointed me
/// at garbage" apart from "the invocation was malformed" — and raised
/// *before* the sweep runs, never mid-way through it.
fn die_data(msg: &str) -> ! {
    obs::error!(target: "bfsim", "{msg}");
    std::process::exit(6);
}

/// One-line diagnostic + exit 7 when `--enforce-parity` found a schedule
/// fingerprint that differs from the baseline: the code change altered a
/// scheduling decision. The report is still written first, so the
/// offending cells can be inspected.
fn die_parity(msg: &str) -> ! {
    obs::error!(target: "bfsim", "{msg}");
    std::process::exit(7);
}

/// One-line diagnostic + exit 8 when a shard failed the coordinator's
/// startup `capabilities` handshake: the sweep never began, no cell
/// ran, and no report was written. Distinct from 3 ("the one daemon I
/// talk to is gone") because a fleet-bringup failure needs a different
/// operator response than a single-daemon one.
fn die_shard(err: &SweepError) -> ! {
    obs::error!(target: "bfsim", "{err}");
    std::process::exit(8);
}

/// One-line diagnostic + exit 9 when the sweep **completed** — every
/// unique cell has exactly one result and the report is on disk — but
/// at least one shard died mid-sweep and its work was redistributed.
/// The results are trustworthy; the fleet is not.
fn die_degraded(msg: &str) -> ! {
    obs::error!(target: "bfsim", "{msg}");
    std::process::exit(9);
}

/// SIGINT/SIGTERM plumbing. Raw `signal(2)` FFI keeps this dependency-
/// free; the handler only flips an atomic (the one async-signal-safe
/// thing it may do) and a mirror thread copies it into the `Arc` flag
/// the sweep dispatcher and shard supervisor poll.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set (only) by the signal handler.
    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    /// Install the handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        unsafe {
            signal(2, on_signal as *const () as usize);
            signal(15, on_signal as *const () as usize);
        }
    }
}

/// A shared flag that trips when the process receives SIGINT/SIGTERM.
/// On non-unix targets the flag exists but never trips (the sweep then
/// simply runs to completion; ^C falls back to the OS default).
fn interrupt_flag() -> Arc<AtomicBool> {
    let flag = Arc::new(AtomicBool::new(false));
    #[cfg(unix)]
    {
        signals::install();
        let mirror = Arc::clone(&flag);
        std::thread::spawn(move || loop {
            if signals::INTERRUPTED.load(Ordering::SeqCst) {
                mirror.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    }
    flag
}

/// Install the global logger before full CLI parsing, so `die` and every
/// later record go through it. The `--log-level` flag beats `BFSIM_LOG`;
/// with neither, errors still print.
fn init_logging(args: &[String]) {
    let mut spec: Option<String> = None;
    let mut json = false;
    let mut elapsed = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--log-level" => spec = it.next().cloned(),
            "--log-json" => json = true,
            "--log-elapsed" => elapsed = true,
            _ => {}
        }
    }
    let filter = match &spec {
        Some(spec) => obs::log::Filter::parse(spec).unwrap_or_else(|e| {
            eprintln!("bfsim: bad --log-level: {e}");
            std::process::exit(2);
        }),
        None => match std::env::var("BFSIM_LOG") {
            Ok(env_spec) if !env_spec.trim().is_empty() => obs::log::Filter::parse(&env_spec)
                .unwrap_or_else(|_| obs::log::Filter::uniform(obs::log::Level::Warn)),
            _ => obs::log::Filter::uniform(obs::log::Level::Error),
        },
    };
    let _ = obs::log::init(obs::log::LogConfig {
        filter,
        json,
        elapsed,
        sink: obs::log::Sink::Stderr,
    });
}

#[derive(Debug, Clone)]
struct Cli {
    command: String,
    model: String,
    trace_file: Option<String>,
    jobs: usize,
    seed: u64,
    seeds: Vec<u64>,
    load: Option<f64>,
    estimate: EstimateModel,
    scheduler: SchedulerKind,
    policy: Policy,
    out: Option<String>,
    gantt: bool,
    series: bool,
    fairness: bool,
    journal: Option<String>,
    addr: String,
    baseline: Option<String>,
    enforce_parity: bool,
    tiny: bool,
    reps: Option<u32>,
    trace_out: Option<String>,
    lenient: bool,
    timeout_ms: u64,
    retries: u32,
    retry_base_ms: u64,
    retry_seed: u64,
    shards: Vec<String>,
    spec: Option<String>,
    window: Option<usize>,
    no_steal: bool,
    max_requeues: u32,
    spans: bool,
    format: String,
    input: Option<String>,
    resume: Option<String>,
    reprobe_ms: u64,
    canonical_out: Option<String>,
    bench: bool,
    count: usize,
    base_port: u16,
    bfsimd_path: Option<String>,
    cache_journal_dir: Option<String>,
    fault_plan: Option<String>,
    restart_limit: u32,
    stable_ms: u64,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            command: String::new(),
            model: "ctc".into(),
            trace_file: None,
            jobs: 5_000,
            seed: 42,
            seeds: vec![42, 1337, 2002],
            load: Some(0.9),
            estimate: EstimateModel::Exact,
            scheduler: SchedulerKind::Easy,
            policy: Policy::Fcfs,
            out: None,
            gantt: false,
            series: false,
            fairness: false,
            journal: None,
            addr: "127.0.0.1:7411".into(),
            baseline: None,
            enforce_parity: false,
            tiny: false,
            reps: None,
            trace_out: None,
            lenient: false,
            timeout_ms: 30_000,
            retries: 4,
            retry_base_ms: 25,
            retry_seed: 0,
            shards: Vec::new(),
            spec: None,
            window: None,
            no_steal: false,
            max_requeues: 3,
            spans: false,
            format: "json".into(),
            input: None,
            resume: None,
            reprobe_ms: 1_000,
            canonical_out: None,
            bench: false,
            count: 2,
            base_port: 7431,
            bfsimd_path: None,
            cache_journal_dir: None,
            fault_plan: None,
            restart_limit: 5,
            stable_ms: 5_000,
        }
    }
}

fn parse_estimate(s: &str) -> EstimateModel {
    match s {
        "exact" => EstimateModel::Exact,
        "user" => EstimateModel::User(UserModelParams::capped(SimSpan::from_hours(18))),
        other => match other
            .strip_prefix("systematic:")
            .and_then(|r| r.parse::<f64>().ok())
        {
            Some(r) if r >= 1.0 => EstimateModel::systematic(r),
            _ => die(&format!(
                "bad --estimate {other:?} (exact | systematic:R | user)"
            )),
        },
    }
}

fn parse_scheduler(s: &str) -> SchedulerKind {
    match s {
        "nobf" => SchedulerKind::NoBackfill,
        "cons" => SchedulerKind::Conservative,
        "cons-reanchor" => SchedulerKind::ConservativeReanchor,
        "cons-headstart" => SchedulerKind::ConservativeHeadStart,
        "cons-none" => SchedulerKind::ConservativeNoCompress,
        "easy" => SchedulerKind::Easy,
        other => {
            if let Some(t) = other
                .strip_prefix("selective:")
                .and_then(|t| t.parse().ok())
            {
                SchedulerKind::Selective { threshold: t }
            } else if let Some(f) = other.strip_prefix("slack:").and_then(|f| f.parse().ok()) {
                SchedulerKind::Slack { slack_factor: f }
            } else if let Some(d) = other.strip_prefix("depth:").and_then(|d| d.parse().ok()) {
                SchedulerKind::Depth { depth: d }
            } else if let Some(t) = other
                .strip_prefix("preemptive:")
                .and_then(|t| t.parse().ok())
            {
                SchedulerKind::Preemptive { threshold: t }
            } else {
                die(&format!("bad --scheduler {other:?}"))
            }
        }
    }
}

fn parse_policy(s: &str) -> Policy {
    match s {
        "fcfs" => Policy::Fcfs,
        "sjf" => Policy::Sjf,
        "xf" => Policy::XFactor,
        "ljf" => Policy::Ljf,
        "widest" => Policy::WidestFirst,
        other => die(&format!("bad --policy {other:?}")),
    }
}

fn parse_cli(args: &[String]) -> Cli {
    let mut cli = Cli::default();
    let mut it = args.iter().cloned();
    cli.command = it
        .next()
        .unwrap_or_else(|| die("missing command (try --help)"));
    if cli.command == "--help" || cli.command == "-h" {
        println!(
            "usage: bfsim <simulate|generate|inspect|compare|submit|stats|metrics|health|\
             shutdown|bench|sweep|shards|timeline|coord-status> [flags]; see module docs"
        );
        std::process::exit(0);
    }
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => cli.model = next(&mut it, "--model"),
            "--trace" => cli.trace_file = Some(next(&mut it, "--trace")),
            "--jobs" => {
                cli.jobs = next(&mut it, "--jobs")
                    .parse()
                    .unwrap_or_else(|_| die("bad --jobs"))
            }
            "--seed" => {
                cli.seed = next(&mut it, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("bad --seed"))
            }
            "--seeds" => {
                cli.seeds = next(&mut it, "--seeds")
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| die("bad --seeds")))
                    .collect()
            }
            "--load" => {
                let v = next(&mut it, "--load");
                cli.load = if v == "native" {
                    None
                } else {
                    Some(v.parse().unwrap_or_else(|_| die("bad --load")))
                }
            }
            "--estimate" => cli.estimate = parse_estimate(&next(&mut it, "--estimate")),
            "--scheduler" => cli.scheduler = parse_scheduler(&next(&mut it, "--scheduler")),
            "--policy" => cli.policy = parse_policy(&next(&mut it, "--policy")),
            "-o" | "--out" => cli.out = Some(next(&mut it, "-o")),
            "--gantt" => cli.gantt = true,
            "--journal" => cli.journal = Some(next(&mut it, "--journal")),
            "--series" => cli.series = true,
            "--fairness" => cli.fairness = true,
            "--addr" => cli.addr = next(&mut it, "--addr"),
            "--baseline" => cli.baseline = Some(next(&mut it, "--baseline")),
            "--enforce-parity" => cli.enforce_parity = true,
            "--tiny" => cli.tiny = true,
            "--trace-out" => cli.trace_out = Some(next(&mut it, "--trace-out")),
            "--lenient" => cli.lenient = true,
            "--timeout-ms" => {
                cli.timeout_ms = next(&mut it, "--timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| die("bad --timeout-ms (millis, 0 disables)"))
            }
            "--retries" => {
                cli.retries = next(&mut it, "--retries")
                    .parse()
                    .unwrap_or_else(|_| die("bad --retries"))
            }
            "--retry-base-ms" => {
                cli.retry_base_ms = next(&mut it, "--retry-base-ms")
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("bad --retry-base-ms (need millis >= 1)"))
            }
            "--retry-seed" => {
                cli.retry_seed = next(&mut it, "--retry-seed")
                    .parse()
                    .unwrap_or_else(|_| die("bad --retry-seed"))
            }
            "--shards" => {
                cli.shards = next(&mut it, "--shards")
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect()
            }
            "--spec" => cli.spec = Some(next(&mut it, "--spec")),
            "--window" => {
                cli.window = Some(
                    next(&mut it, "--window")
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| die("bad --window (need an integer >= 1)")),
                )
            }
            "--no-steal" => cli.no_steal = true,
            "--max-requeues" => {
                cli.max_requeues = next(&mut it, "--max-requeues")
                    .parse()
                    .unwrap_or_else(|_| die("bad --max-requeues"))
            }
            "--spans" => cli.spans = true,
            "--resume" => cli.resume = Some(next(&mut it, "--resume")),
            "--reprobe-ms" => {
                cli.reprobe_ms = next(&mut it, "--reprobe-ms")
                    .parse()
                    .unwrap_or_else(|_| die("bad --reprobe-ms (millis, 0 disables)"))
            }
            "--canonical-out" => cli.canonical_out = Some(next(&mut it, "--canonical-out")),
            "--bench" => cli.bench = true,
            "--count" => {
                cli.count = next(&mut it, "--count")
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("bad --count (need an integer >= 1)"))
            }
            "--base-port" => {
                cli.base_port = next(&mut it, "--base-port")
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("bad --base-port (need a port >= 1)"))
            }
            "--bfsimd" => cli.bfsimd_path = Some(next(&mut it, "--bfsimd")),
            "--cache-journal-dir" => {
                cli.cache_journal_dir = Some(next(&mut it, "--cache-journal-dir"))
            }
            "--fault-plan" => cli.fault_plan = Some(next(&mut it, "--fault-plan")),
            "--restart-limit" => {
                cli.restart_limit = next(&mut it, "--restart-limit")
                    .parse()
                    .unwrap_or_else(|_| die("bad --restart-limit"))
            }
            "--stable-ms" => {
                cli.stable_ms = next(&mut it, "--stable-ms")
                    .parse()
                    .unwrap_or_else(|_| die("bad --stable-ms"))
            }
            "--format" => {
                cli.format = next(&mut it, "--format");
                if cli.format != "json" && cli.format != "prom" {
                    die(&format!("bad --format {:?} (json | prom)", cli.format));
                }
            }
            "--in" => cli.input = Some(next(&mut it, "--in")),
            // Consumed by init_logging before parsing; skip here.
            "--log-level" => {
                let _ = next(&mut it, "--log-level");
            }
            "--log-json" | "--log-elapsed" => {}
            "--reps" => {
                cli.reps = Some(
                    next(&mut it, "--reps")
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| die("bad --reps (need an integer >= 1)")),
                )
            }
            other if !other.starts_with('-') && cli.command == "inspect" => {
                cli.trace_file = Some(other.to_string())
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    cli
}

fn build_trace(cli: &Cli) -> Trace {
    let base = match &cli.trace_file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
            let mode = if cli.lenient {
                swf::ParseMode::Lenient
            } else {
                swf::ParseMode::Strict
            };
            let parsed = swf::parse_trace_with(&text, path, None, mode)
                .unwrap_or_else(|e| die(&format!("parsing {path}: {e}")));
            if parsed.report.total() > 0 {
                obs::warn!(target: "bfsim",
                    "lenient parse of {path} skipped {} malformed lines ({})",
                    parsed.report.total(), parsed.report.summary());
            }
            parsed.trace
        }
        None => match cli.model.as_str() {
            "ctc" => workload::models::ctc().generate(cli.jobs, cli.seed),
            "sdsc" => workload::models::sdsc().generate(cli.jobs, cli.seed),
            "lublin" => LublinModel::default_for(256).generate(cli.jobs, cli.seed),
            other => die(&format!("unknown model {other:?} (ctc | sdsc | lublin)")),
        },
    };
    let estimated = cli.estimate.apply(&base, cli.seed ^ 0xE57);
    match cli.load {
        Some(rho) => scale_to_load(&estimated, rho),
        None => estimated,
    }
}

/// Drain `recorder` to `path` as JSONL, reporting drops.
fn write_trace_out(recorder: &Rc<RefCell<Recorder>>, path: &str) {
    let rec = recorder.borrow();
    let mut out = Vec::new();
    rec.write_jsonl(&mut out)
        .expect("writing JSONL to a Vec cannot fail");
    std::fs::write(path, out).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
    if rec.dropped() > 0 {
        obs::warn!(target: "bfsim",
            "trace ring dropped {} oldest events (raise the cap?)", rec.dropped());
    }
    println!("trace: {} events -> {path}", rec.events().len());
}

fn cmd_simulate(cli: &Cli) {
    let trace = build_trace(cli);
    let schedule = if let Some(path) = &cli.journal {
        let (schedule, journal) = simulate_journaled(&trace, cli.scheduler, cli.policy);
        let mut out = String::new();
        for e in &journal {
            out.push_str(&serde_json::to_string(e).expect("journal serializes"));
            out.push('\n');
        }
        std::fs::write(path, out).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("journal: {} events -> {path}", journal.len());
        schedule
    } else if let Some(path) = &cli.trace_out {
        let recorder = obs::trace::shared(obs::trace::DEFAULT_TRACE_CAP.max(trace.len() * 8));
        let (schedule, _) = simulate_observed(
            &trace,
            cli.scheduler,
            cli.policy,
            SimOptions::with_recorder(recorder.clone()),
        );
        write_trace_out(&recorder, path);
        schedule
    } else {
        simulate(&trace, cli.scheduler, cli.policy)
    };
    schedule
        .validate()
        .unwrap_or_else(|e| die(&format!("audit failed: {e}")));
    let stats = schedule.stats(&CategoryCriteria::default());
    println!("scheduler: {}", schedule.scheduler);
    println!("{}", TraceStats::of(&trace).render());
    println!(
        "avg bounded slowdown {:.2} | avg wait {:.0} s | avg turnaround {:.0} s",
        stats.overall.avg_slowdown(),
        stats.overall.avg_wait(),
        stats.overall.avg_turnaround()
    );
    println!(
        "worst turnaround {:.1} h | utilization {:.3} | makespan {}",
        stats.overall.worst_turnaround() / 3600.0,
        stats.utilization,
        stats.makespan
    );
    for cat in Category::ALL {
        let m = stats.category(cat);
        println!(
            "  {cat}: {:6} jobs  slowdown {:8.2}",
            m.count(),
            m.avg_slowdown()
        );
    }
    if let Some(p) = schedule.profile_stats {
        println!(
            "profile ops: {} anchors ({:.1} segs/anchor, {} tree descents, \
             {:.1} nodes/descent) | {} reserves | {} releases | \
             {} compress passes | peak {} segments",
            p.find_anchor_calls,
            p.segments_per_anchor(),
            p.tree_descents,
            p.nodes_per_descent(),
            p.reserves,
            p.releases,
            p.compress_passes,
            p.peak_segments
        );
        println!(
            "alloc path:  {} order bytes shifted | {} slab slot reuses | \
             {} scratch reuses",
            p.order_bytes_shifted, p.slab_slot_reuses, p.scratch_reuses
        );
    }
    if cli.fairness {
        let f = fairness(&schedule.outcomes);
        println!(
            "fairness: slowdown gini {:.3} | max stretch {:.1} | overtake rate {:.3}",
            f.slowdown_gini, f.max_stretch, f.overtake_rate
        );
    }
    if cli.series {
        let bin = SimSpan::new((stats.makespan.as_secs() / 72).max(1));
        let util = utilization_series(&schedule.outcomes, trace.nodes(), bin);
        let depth = queue_depth_series(&schedule.outcomes, bin);
        println!("utilization  {}", viz::sparkline(&util));
        println!(
            "queue depth  {}  (peak {:.0})",
            viz::sparkline(&depth),
            depth.peak()
        );
    }
    if cli.gantt {
        println!("{}", viz::gantt(&schedule.outcomes, 100));
    }
}

fn cmd_generate(cli: &Cli) {
    let trace = build_trace(cli);
    let out = cli
        .out
        .clone()
        .unwrap_or_else(|| die("generate needs -o OUT.swf"));
    std::fs::write(&out, swf::write_trace(&trace))
        .unwrap_or_else(|e| die(&format!("writing {out}: {e}")));
    println!("wrote {} jobs to {out}", trace.len());
}

fn cmd_inspect(cli: &Cli) {
    let trace = build_trace(cli);
    println!("{}", TraceStats::of(&trace).render());
    let grid = workload::arrival_heatmap(&trace);
    let rows: Vec<Vec<f64>> = grid
        .iter()
        .map(|day| day.iter().map(|&c| c as f64).collect())
        .collect();
    println!("weekly arrival heatmap (rows = day of week, cols = hour of day):");
    println!(
        "{}",
        viz::heatmap(&rows, &["d0", "d1", "d2", "d3", "d4", "d5", "d6"])
    );
}

fn cmd_compare(cli: &Cli) {
    let source = match cli.model.as_str() {
        "ctc" => TraceSource::Ctc {
            jobs: cli.jobs,
            seed: cli.seed,
        },
        "sdsc" => TraceSource::Sdsc {
            jobs: cli.jobs,
            seed: cli.seed,
        },
        other => die(&format!("compare supports ctc|sdsc models, got {other:?}")),
    };
    let campaign = Campaign {
        scenario: Scenario {
            source,
            estimate: cli.estimate,
            estimate_seed: 1,
            load: cli.load,
        },
        seeds: cli.seeds.clone(),
        grid: vec![
            (SchedulerKind::NoBackfill, Policy::Fcfs),
            (SchedulerKind::Conservative, Policy::Fcfs),
            (SchedulerKind::Easy, Policy::Fcfs),
            (SchedulerKind::Easy, Policy::Sjf),
            (SchedulerKind::Easy, Policy::XFactor),
            (SchedulerKind::Selective { threshold: 2.0 }, Policy::Fcfs),
        ],
        threads: None,
    };
    let mut table = Table::new(
        format!("Campaign over seeds {:?}", cli.seeds),
        &["scheme", "slowdown", "turnaround (s)", "utilization"],
    );
    for cell in campaign.run() {
        table.row(vec![
            format!("{}/{}", cell.kind.label(), cell.policy),
            cell.slowdown.to_string(),
            cell.turnaround.to_string(),
            format!(
                "{:.3} ± {:.3}",
                cell.utilization.mean, cell.utilization.ci95
            ),
        ]);
    }
    println!("{}", table.render());
}

fn service_config(cli: &Cli) -> RunConfig {
    if cli.trace_file.is_some() {
        die("submit sends a declarative RunConfig; --trace files are not supported");
    }
    let source = match cli.model.as_str() {
        "ctc" => TraceSource::Ctc {
            jobs: cli.jobs,
            seed: cli.seed,
        },
        "sdsc" => TraceSource::Sdsc {
            jobs: cli.jobs,
            seed: cli.seed,
        },
        other => die(&format!("submit supports ctc|sdsc models, got {other:?}")),
    };
    RunConfig {
        scenario: Scenario {
            source,
            estimate: cli.estimate,
            estimate_seed: cli.seed ^ 0xE57,
            load: cli.load,
        },
        kind: cli.scheduler,
        policy: cli.policy,
    }
}

/// Deadline/retry options from the CLI flags, shared by every daemon
/// command and by the sweep coordinator's per-shard clients.
fn client_options(cli: &Cli) -> ClientOptions {
    ClientOptions {
        deadline: if cli.timeout_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(cli.timeout_ms))
        },
        retry: RetryPolicy {
            max_retries: cli.retries,
            base: Duration::from_millis(cli.retry_base_ms),
            seed: cli.retry_seed,
            ..RetryPolicy::default()
        },
    }
}

/// Build the resilient client from the CLI's deadline/retry flags. The
/// connection itself is lazy, so this never fails — errors surface (and
/// get retried) on the first actual request.
fn connect(cli: &Cli) -> ResilientClient {
    ResilientClient::new(&cli.addr, client_options(cli))
}

fn cmd_submit(cli: &Cli) {
    let config = service_config(cli);
    let mut client = connect(cli);
    let reply = client
        .submit(&config)
        .unwrap_or_else(|e| die_client("submit", &cli.addr, e));
    let r = &reply.report;
    println!(
        "{} [{}] config {:#018x} in {} ms",
        r.label,
        if reply.cached { "cached" } else { "fresh" },
        reply.config_hash,
        reply.wall_ms
    );
    println!(
        "{} jobs on {} nodes | fingerprint {:#018x}",
        r.jobs, r.nodes, r.fingerprint
    );
    println!(
        "avg bounded slowdown {:.2} | avg wait {:.0} s | avg turnaround {:.0} s",
        r.stats.overall.avg_slowdown(),
        r.stats.overall.avg_wait(),
        r.stats.overall.avg_turnaround()
    );
    println!(
        "worst turnaround {:.1} h | utilization {:.3} | makespan {}",
        r.stats.overall.worst_turnaround() / 3600.0,
        r.stats.utilization,
        r.stats.makespan
    );
    println!(
        "fairness: slowdown gini {:.3} | max stretch {:.1} | overtake rate {:.3}",
        r.fairness.slowdown_gini, r.fairness.max_stretch, r.fairness.overtake_rate
    );
}

fn cmd_stats(cli: &Cli) {
    let stats = connect(cli)
        .stats()
        .unwrap_or_else(|e| die_client("stats", &cli.addr, e));
    println!(
        "requests: {} submitted | {} completed | {} failed | {} rejected | {} shed{}",
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.rejected,
        stats.shed,
        if stats.draining { " | DRAINING" } else { "" }
    );
    println!(
        "cache: {} hits / {} misses | {} entries | {} evicted",
        stats.cache_hits, stats.cache_misses, stats.cache_entries, stats.cache_evictions
    );
    println!(
        "pool: {} queued | {} in flight | {} worker panics",
        stats.queue_depth, stats.in_flight, stats.worker_panics
    );
    println!(
        "wall: {:.1} ms mean | {} ms max | {} ms total",
        stats.wall_ms_mean(),
        stats.wall_ms_max,
        stats.wall_ms_total
    );
}

/// One measured cell of the pinned throughput sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchCell {
    /// Unique cell label: config label + load + estimate model.
    label: String,
    /// The full config, so the cell can be reproduced verbatim.
    config: RunConfig,
    /// Schedule fingerprint — equal across code versions iff the change
    /// preserved every scheduling decision in this cell.
    fingerprint: u64,
    /// Jobs simulated.
    jobs: usize,
    /// Discrete events the driver delivered.
    events: u64,
    /// Best-of-repeats wall time for the simulation alone (trace
    /// materialization excluded), in milliseconds.
    wall_ms: f64,
    /// `events / wall seconds` — the headline throughput number.
    events_per_sec: f64,
    /// Profile and queue operation counters, if the scheduler keeps them.
    profile: Option<ProfileStats>,
}

/// A current cell measured against the same cell in a `--baseline` file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchComparison {
    label: String,
    baseline_events_per_sec: f64,
    events_per_sec: f64,
    /// `events_per_sec / baseline_events_per_sec`.
    speedup: f64,
    /// True iff this cell's schedule fingerprint equals the baseline's —
    /// the speedup changed no scheduling decision.
    fingerprint_matches: bool,
}

/// The emitted `BENCH_*.json` document. See DESIGN.md §11 for the schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    /// Schema/PR version of this report.
    version: u32,
    tool: String,
    /// True when produced by the shrunken `--tiny` CI sweep.
    tiny: bool,
    cells: Vec<BenchCell>,
    /// The `--baseline` file's cells, embedded so before/after travel in
    /// one self-contained document.
    baseline: Option<Vec<BenchCell>>,
    /// Per-cell current-vs-baseline speedups (empty without `--baseline`).
    comparison: Vec<BenchComparison>,
}

/// Unique bench label: the config label alone collides across load and
/// estimate-model variants of the same scheduler cell.
fn bench_label(config: &RunConfig) -> String {
    let est = match config.scenario.estimate {
        EstimateModel::Exact => "exact".to_string(),
        EstimateModel::SystematicOver { factor } => format!("sys{factor}"),
        EstimateModel::User(_) => "user".to_string(),
    };
    let load = match config.scenario.load {
        Some(rho) => format!("{rho}"),
        None => "native".to_string(),
    };
    format!("{} rho={load} est={est}", config.label())
}

/// Load and validate a `--baseline` report *before* the sweep runs: a
/// missing/corrupt file or a baseline with no cell in common with the
/// current sweep exits 6 immediately instead of wasting the whole sweep
/// (or worse, panicking mid-way through it).
fn load_baseline(path: &str, configs: &[RunConfig], enforce_parity: bool) -> Vec<BenchCell> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die_data(&format!("reading baseline {path}: {e}")));
    let report: BenchReport = serde_json::from_str(&text)
        .unwrap_or_else(|e| die_data(&format!("parsing baseline {path}: {e}")));
    // Cells match by *config* (the full reproducible RunConfig), not by
    // label: labels are human-readable and have collided across sweep
    // revisions before.
    let missing: Vec<&RunConfig> = configs
        .iter()
        .filter(|c| !report.cells.iter().any(|b| b.config == **c))
        .collect();
    if missing.len() == configs.len() {
        die_data(&format!(
            "baseline {path} shares no cell with the current sweep \
             ({} baseline cells, {} current): wrong file?",
            report.cells.len(),
            configs.len()
        ));
    }
    if enforce_parity && !missing.is_empty() {
        die_data(&format!(
            "baseline {path} is missing {} of {} sweep cells (first: {}) \
             and --enforce-parity needs all of them",
            missing.len(),
            configs.len(),
            bench_label(missing[0])
        ));
    }
    report.cells
}

fn cmd_bench(cli: &Cli) {
    let configs = bench_cells(cli.tiny);
    let baseline: Option<Vec<BenchCell>> = cli
        .baseline
        .as_ref()
        .map(|path| load_baseline(path, &configs, cli.enforce_parity));
    if cli.enforce_parity && baseline.is_none() {
        die("--enforce-parity needs --baseline");
    }
    // Wall time on a shared machine is one-sided noise (contention only
    // slows a run down), so each cell keeps its best-of-`reps` time.
    let repeats = cli.reps.unwrap_or(if cli.tiny { 1 } else { 2 });
    if cli.spans {
        obs::span::set_enabled(true);
    }
    let mut cells = Vec::with_capacity(configs.len());
    let mut trace_file = cli.trace_out.as_ref().map(|path| {
        std::fs::File::create(path).unwrap_or_else(|e| die(&format!("creating {path}: {e}")))
    });
    for config in &configs {
        // Materialize once, outside the timed region: the bench measures
        // the event loop, not the workload generator.
        let trace = config.scenario.materialize();
        let cell_ctx = obs::SpanContext {
            trace_id: config.content_hash(),
            span_id: config.content_hash(),
        };
        let mut best: Option<(f64, Schedule)> = None;
        let mut recorded: Option<Rc<RefCell<Recorder>>> = None;
        for _ in 0..repeats {
            // With --trace-out the timed run itself carries the
            // recorder, and with --spans the phase accumulator: the
            // emitted fingerprints then prove both are decision-neutral
            // against a plain bench run.
            let recorder = cli
                .trace_out
                .as_ref()
                .map(|_| obs::trace::shared(obs::trace::DEFAULT_TRACE_CAP.max(trace.len() * 8)));
            let phases = cli.spans.then(|| {
                let acc = Rc::new(RefCell::new(obs::PhaseAcc::new()));
                acc.borrow_mut().set_ctx(cell_ctx);
                acc
            });
            let start_us = obs::span::now_micros();
            let t0 = std::time::Instant::now();
            let schedule = if recorder.is_some() || phases.is_some() {
                simulate_observed(
                    &trace,
                    config.kind,
                    config.policy,
                    SimOptions {
                        journal: false,
                        recorder: recorder.clone(),
                        phases: phases.clone(),
                    },
                )
                .0
            } else {
                config.run_on(&trace)
            };
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            if let Some(acc) = &phases {
                // Root span per timed run + phase histograms into the
                // process-global registry (surfaced by `bfsim metrics`
                // against a daemon, or inspectable in-process).
                obs::span::record_raw(obs::SpanRecord {
                    trace_id: cell_ctx.trace_id,
                    span_id: obs::span::next_span_id(),
                    parent_id: 0,
                    name: "bench.run".to_string(),
                    start_us,
                    dur_us: obs::span::now_micros().saturating_sub(start_us),
                });
                acc.borrow().flush_into(obs::metrics::global());
            }
            if best.as_ref().is_none_or(|(b, _)| wall_ms < *b) {
                best = Some((wall_ms, schedule));
                recorded = recorder;
            }
        }
        let (wall_ms, schedule) = best.expect("repeats >= 1");
        if let (Some(file), Some(rec)) = (trace_file.as_mut(), &recorded) {
            rec.borrow()
                .write_jsonl(file)
                .unwrap_or_else(|e| die(&format!("writing trace events: {e}")));
        }
        let events_per_sec = if wall_ms > 0.0 {
            schedule.events as f64 / (wall_ms / 1e3)
        } else {
            0.0
        };
        let label = bench_label(config);
        obs::info!(target: "bfsim::bench",
            "{label}: {} events / {wall_ms:.1} ms = {events_per_sec:.0} ev/s",
            schedule.events
        );
        cells.push(BenchCell {
            label,
            config: *config,
            fingerprint: schedule.fingerprint(),
            jobs: schedule.outcomes.len(),
            events: schedule.events,
            wall_ms,
            events_per_sec,
            profile: schedule.profile_stats,
        });
    }

    let mut comparison = Vec::new();
    if let Some(base) = &baseline {
        for cell in &cells {
            let Some(b) = base.iter().find(|b| b.config == cell.config) else {
                continue;
            };
            comparison.push(BenchComparison {
                label: cell.label.clone(),
                baseline_events_per_sec: b.events_per_sec,
                events_per_sec: cell.events_per_sec,
                speedup: if b.events_per_sec > 0.0 {
                    cell.events_per_sec / b.events_per_sec
                } else {
                    0.0
                },
                fingerprint_matches: b.fingerprint == cell.fingerprint,
            });
        }
    }

    let report = BenchReport {
        version: 5,
        tool: "bfsim bench".into(),
        tiny: cli.tiny,
        cells,
        baseline,
        comparison,
    };
    let out = cli.out.clone().unwrap_or_else(|| "BENCH_5.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("writing {out}: {e}")));

    // Self-check: the emitted document must round-trip. This is what the
    // CI smoke step relies on to validate the format.
    let back =
        std::fs::read_to_string(&out).unwrap_or_else(|e| die(&format!("re-reading {out}: {e}")));
    let parsed: BenchReport = serde_json::from_str(&back)
        .unwrap_or_else(|e| die(&format!("emitted {out} is invalid: {e}")));
    if parsed.cells.len() != report.cells.len() {
        die(&format!("emitted {out} lost cells in the round-trip"));
    }
    for c in &report.comparison {
        let tag = if c.fingerprint_matches {
            ""
        } else {
            "  !! FINGERPRINT CHANGED"
        };
        println!(
            "{}: {:.0} -> {:.0} ev/s ({:.2}x){tag}",
            c.label, c.baseline_events_per_sec, c.events_per_sec, c.speedup
        );
    }
    println!("wrote {} cells to {out} (validated)", report.cells.len());
    if cli.enforce_parity {
        let changed: Vec<&BenchComparison> = report
            .comparison
            .iter()
            .filter(|c| !c.fingerprint_matches)
            .collect();
        if !changed.is_empty() {
            // The report is on disk already: fail loudly but inspectably.
            die_parity(&format!(
                "{} of {} cells changed schedule fingerprint vs baseline (first: {})",
                changed.len(),
                report.comparison.len(),
                changed[0].label
            ));
        }
        println!(
            "fingerprint parity: {} cells identical to baseline",
            report.comparison.len()
        );
    }
}

fn cmd_metrics(cli: &Cli) {
    if cli.format == "prom" {
        let text = connect(cli)
            .metrics_prom()
            .unwrap_or_else(|e| die_client("metrics", &cli.addr, e));
        // Prometheus text exposition (already newline-terminated).
        print!("{text}");
        return;
    }
    let json = connect(cli)
        .metrics()
        .unwrap_or_else(|e| die_client("metrics", &cli.addr, e));
    // One canonical-JSON document on stdout, ready for `jq` or diffing.
    println!("{json}");
}

fn cmd_health(cli: &Cli) {
    let h = connect(cli)
        .health()
        .unwrap_or_else(|e| die_client("health", &cli.addr, e));
    let status = if h.draining {
        "draining"
    } else if h.ready {
        "ready"
    } else {
        "not ready"
    };
    println!("bfsimd at {} is {status}", cli.addr);
    println!(
        "pool: {} workers | queue {}/{} | {} in flight | {} shed | {} worker panics",
        h.workers, h.queue_depth, h.queue_cap, h.in_flight, h.shed, h.worker_panics
    );
    println!("cache: {} entries", h.cache_entries);
    match &h.journal {
        Some(j) => println!(
            "journal: {} ({} replayed, {} appended{})",
            j.path,
            j.replayed,
            j.appended,
            if j.truncated {
                format!(
                    ", torn tail truncated at startup ({} bytes dropped)",
                    j.dropped_bytes
                )
            } else {
                String::new()
            }
        ),
        None => println!("journal: none (cache is in-memory only)"),
    }
    if let Some(plan) = &h.fault_plan {
        println!("FAULT PLAN ACTIVE: {plan}");
    }
}

fn cmd_shutdown(cli: &Cli) {
    connect(cli)
        .shutdown()
        .unwrap_or_else(|e| die_client("shutdown", &cli.addr, e));
    println!("bfsimd at {} is draining", cli.addr);
}

/// One completed cell in a `bfsim sweep` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SweepCellOut {
    /// Unique bench label (config + load + estimate model).
    label: String,
    /// The full config, so the cell can be reproduced verbatim.
    config: RunConfig,
    /// Canonical content hash — the shard-assignment and dedup key,
    /// verified equal between coordinator and serving daemon.
    config_hash: u64,
    /// Schedule fingerprint; byte-identical to a serial run's.
    fingerprint: u64,
    /// True when the shard answered from its result cache.
    cached: bool,
    /// Index (into `shards`) of the shard that served it.
    shard: usize,
    /// True when the cell ran away from its home shard.
    stolen: bool,
    /// Wall milliseconds the serving shard spent on it.
    wall_ms: u64,
}

/// One permanently failed cell in a `bfsim sweep` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SweepFailedOut {
    label: String,
    config: RunConfig,
    config_hash: u64,
    error: String,
}

/// Per-shard accounting in a `bfsim sweep` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SweepShardOut {
    addr: String,
    workers: u64,
    window: usize,
    assigned: usize,
    completed: u64,
    stolen: u64,
    cache_hits: u64,
    dead: bool,
    wall_ms_p99: u64,
}

/// The emitted `SWEEP.json` document. See DESIGN.md §15 for semantics.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SweepReport {
    version: u32,
    tool: String,
    shards: Vec<SweepShardOut>,
    cells: Vec<SweepCellOut>,
    failed: Vec<SweepFailedOut>,
    steals: u64,
    requeues: u64,
    duplicates: usize,
    degraded: bool,
    /// Shard deaths observed mid-sweep. A shard can die and later
    /// rejoin, so `deaths > 0` with `degraded == false` means every
    /// casualty was healed before the sweep ended.
    #[serde(default)]
    deaths: u64,
    /// Dead shards re-admitted by the coordinator's reprobe loop.
    #[serde(default)]
    rejoins: u64,
    /// Cells restored from a `--resume` journal without dispatching.
    #[serde(default)]
    replayed: u64,
    /// True when SIGINT/SIGTERM stopped the sweep before completion.
    #[serde(default)]
    interrupted: bool,
    /// Field-wise sum of reachable shards' post-sweep service stats.
    stats: Option<service::ServiceStats>,
    /// Canonical merged metrics document (same format one daemon emits),
    /// embedded as a string.
    metrics: Option<String>,
    /// Collected span sources (`--spans` only; empty otherwise). The
    /// default keeps version-1 reports readable by `bfsim timeline`.
    #[serde(default)]
    spans: Vec<coord::SpanDoc>,
}

/// The sweep's cell grid: an explicit `--spec FILE.json` (a serialized
/// `SweepSpec`) or the pinned tiny bench grid via `--tiny`.
fn sweep_cells(cli: &Cli) -> Vec<RunConfig> {
    if let Some(path) = &cli.spec {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die_data(&format!("reading sweep spec {path}: {e}")));
        let spec: SweepSpec = serde_json::from_str(&text)
            .unwrap_or_else(|e| die_data(&format!("parsing sweep spec {path}: {e}")));
        spec.validate()
            .unwrap_or_else(|e| die_data(&format!("invalid sweep spec {path}: {e}")));
        spec.expand()
    } else if cli.bench {
        bench_cells(false)
    } else if cli.tiny {
        bench_cells(true)
    } else {
        die("sweep needs --spec FILE.json, --tiny, or --bench")
    }
}

/// One cell of the `--canonical-out` projection.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CanonicalCell {
    label: String,
    config_hash: u64,
    fingerprint: u64,
}

/// One permanently failed cell of the `--canonical-out` projection. The
/// error *text* is deliberately absent: attempt counts and shard
/// addresses in it vary run to run, and this file must not.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CanonicalFailed {
    label: String,
    config_hash: u64,
}

/// The `--canonical-out CANON.json` document: the deterministic
/// projection of a sweep. Plan-ordered cells with their config hashes
/// and schedule fingerprints; every nondeterministic field of the full
/// report (wall times, shard placement, steal/cache accounting, span
/// timings) is stripped. Two runs of the same spec — including a
/// crashed-then-`--resume`d run versus an undisturbed one — produce
/// byte-identical files, so CI can `cmp` them.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CanonicalSweep {
    version: u32,
    plan_hash: u64,
    cells: Vec<CanonicalCell>,
    failed: Vec<CanonicalFailed>,
    duplicates: usize,
}

fn cmd_sweep(cli: &Cli) {
    if cli.shards.is_empty() {
        die("sweep needs --shards HOST:PORT[,HOST:PORT...]");
    }
    if cli.journal.is_some() && cli.resume.is_some() {
        die("--journal and --resume are mutually exclusive (a resume appends to the journal it replays)");
    }
    let cells = sweep_cells(cli);
    // Re-derive the plan for index → config mapping; planning is a pure
    // function of (cells, shard count), so this matches the dispatcher.
    let plan = coord::Plan::new(&cells, cli.shards.len());

    // --journal starts a fresh journal; --resume replays one written by
    // an earlier (crashed or interrupted) run of the *same* plan and
    // keeps appending to it. Any resume-time mismatch — wrong plan hash,
    // foreign cell hashes, malformed records — is a bad data file: 6.
    let mut replay: Option<SweepReplay> = None;
    let journal: Option<SweepJournal> = if let Some(path) = &cli.resume {
        match SweepJournal::resume(Path::new(path), &plan) {
            Ok((journal, rep)) => {
                if rep.truncated {
                    obs::warn!(target: "bfsim",
                        "journal {path}: torn tail truncated ({} bytes dropped)",
                        rep.dropped_bytes);
                }
                println!(
                    "resume: {}/{} cells already journaled ({} failed, {} duplicate records)",
                    rep.resolved(),
                    plan.len(),
                    rep.failed.len(),
                    rep.duplicates
                );
                replay = Some(rep);
                Some(journal)
            }
            Err(err) => die_data(&format!("resuming {path}: {err}")),
        }
    } else if let Some(path) = &cli.journal {
        match SweepJournal::create(Path::new(path), &plan) {
            Ok(journal) => Some(journal),
            Err(err) => die_data(&format!("creating journal {path}: {err}")),
        }
    } else {
        None
    };

    let interrupt = interrupt_flag();
    let opts = SweepOptions {
        client: client_options(cli),
        window: cli.window,
        steal: !cli.no_steal,
        max_requeues: cli.max_requeues,
        spans: cli.spans,
        reprobe: (cli.reprobe_ms > 0).then(|| Duration::from_millis(cli.reprobe_ms)),
        interrupt: Some(Arc::clone(&interrupt)),
    };
    let outcome = match run_sweep_recoverable(
        &cli.shards,
        &cells,
        &opts,
        journal.as_ref(),
        replay.as_ref(),
    ) {
        Ok(outcome) => outcome,
        Err(err @ SweepError::ShardUnreachable { .. }) => die_shard(&err),
        Err(SweepError::NoShards) => die("sweep needs --shards"),
        Err(SweepError::EmptySweep) => die_data("sweep expanded to zero cells"),
    };

    let report = SweepReport {
        version: 3,
        tool: "bfsim sweep".into(),
        shards: outcome
            .shards
            .iter()
            .map(|s| SweepShardOut {
                addr: s.addr.clone(),
                workers: s.workers,
                window: s.window,
                assigned: s.assigned,
                completed: s.completed,
                stolen: s.stolen,
                cache_hits: s.cache_hits,
                dead: s.dead,
                wall_ms_p99: s.wall_ms_p99,
            })
            .collect(),
        cells: outcome
            .cells
            .iter()
            .map(|c| SweepCellOut {
                label: bench_label(&plan.cells[c.index]),
                config: plan.cells[c.index],
                config_hash: c.config_hash,
                fingerprint: c.report.fingerprint,
                cached: c.cached,
                shard: c.shard,
                stolen: c.stolen,
                wall_ms: c.wall_ms,
            })
            .collect(),
        failed: outcome
            .failed
            .iter()
            .map(|f| SweepFailedOut {
                label: bench_label(&plan.cells[f.index]),
                config: plan.cells[f.index],
                config_hash: f.config_hash,
                error: f.error.clone(),
            })
            .collect(),
        steals: outcome.steals,
        requeues: outcome.requeues,
        duplicates: outcome.duplicates,
        degraded: outcome.degraded,
        deaths: outcome.deaths,
        rejoins: outcome.rejoins,
        replayed: outcome.replayed,
        interrupted: outcome.interrupted,
        stats: outcome.stats,
        metrics: outcome.metrics_json,
        spans: outcome.spans.into_iter().map(Into::into).collect(),
    };
    let out = cli.out.clone().unwrap_or_else(|| "SWEEP.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("writing {out}: {e}")));

    for s in &report.shards {
        println!(
            "shard {}: {} assigned | {} completed ({} stolen, {} cached) | \
             window {} | p99 {} ms{}",
            s.addr,
            s.assigned,
            s.completed,
            s.stolen,
            s.cache_hits,
            s.window,
            s.wall_ms_p99,
            if s.dead { " | DIED MID-SWEEP" } else { "" }
        );
    }
    println!(
        "sweep: {}/{} cells ok | {} failed | {} steals | {} requeues | \
         {} duplicates collapsed -> {out}",
        report.cells.len(),
        plan.len(),
        report.failed.len(),
        report.steals,
        report.requeues,
        report.duplicates
    );
    if cli.spans {
        let total: usize = report.spans.iter().map(|s| s.spans.len()).sum();
        println!(
            "spans: {total} from {} sources (merge with `bfsim timeline --in {out}`)",
            report.spans.len()
        );
    }
    if report.deaths > 0 || report.replayed > 0 || journal.is_some() {
        println!(
            "recovery: {} cells replayed from journal | {} shard deaths | {} rejoins{}",
            report.replayed,
            report.deaths,
            report.rejoins,
            journal
                .as_ref()
                .map(|j| format!(" | journal {}", j.path().display()))
                .unwrap_or_default()
        );
    }

    // --canonical-out: the deterministic projection, plan-ordered.
    if let Some(path) = &cli.canonical_out {
        let mut cells: Vec<(usize, CanonicalCell)> = outcome
            .cells
            .iter()
            .map(|c| {
                (
                    c.index,
                    CanonicalCell {
                        label: bench_label(&plan.cells[c.index]),
                        config_hash: c.config_hash,
                        fingerprint: c.report.fingerprint,
                    },
                )
            })
            .collect();
        cells.sort_by_key(|(index, _)| *index);
        let mut failed: Vec<(usize, CanonicalFailed)> = outcome
            .failed
            .iter()
            .map(|f| {
                (
                    f.index,
                    CanonicalFailed {
                        label: bench_label(&plan.cells[f.index]),
                        config_hash: f.config_hash,
                    },
                )
            })
            .collect();
        failed.sort_by_key(|(index, _)| *index);
        let canon = CanonicalSweep {
            version: 1,
            plan_hash: plan.content_hash(),
            cells: cells.into_iter().map(|(_, c)| c).collect(),
            failed: failed.into_iter().map(|(_, f)| f).collect(),
            duplicates: outcome.duplicates,
        };
        let json = serde_json::to_string_pretty(&canon).expect("canonical sweep serializes");
        std::fs::write(path, &json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("canonical: {} cells -> {path}", canon.cells.len());
    }

    // Exit taxonomy: the report is on disk in every branch below. An
    // interrupt outranks the failure branches — the "failed" cells are
    // just the ones the signal preempted, and the journal has everything
    // a resume needs.
    if report.interrupted {
        let hint = match &journal {
            Some(j) => format!(
                "; resume with `bfsim sweep --resume {}` (same spec and flags)",
                j.path().display()
            ),
            None => "; no --journal was active, so a rerun starts from scratch".to_string(),
        };
        obs::error!(target: "bfsim",
            "sweep interrupted by signal: {} of {} cells resolved{hint}",
            report.cells.len(), plan.len());
        std::process::exit(130);
    }
    let all_dead = report.shards.iter().all(|s| s.dead);
    if !report.failed.is_empty() {
        if all_dead {
            obs::error!(target: "bfsim",
                "every shard died mid-sweep; {} cells unresolved", report.failed.len());
            std::process::exit(3);
        }
        obs::error!(target: "bfsim",
            "{} of {} cells failed permanently (first: {})",
            report.failed.len(), plan.len(), report.failed[0].error);
        std::process::exit(5);
    }
    if report.degraded {
        die_degraded(&format!(
            "sweep completed degraded: all {} cells resolved, but {} shard(s) \
             were dead at sweep end ({} deaths, {} rejoins)",
            plan.len(),
            report.shards.iter().filter(|s| s.dead).count(),
            report.deaths,
            report.rejoins
        ));
    }
}

/// `bfsim shards` — spawn `--count` local `bfsimd` children on
/// consecutive ports and babysit them: crashed children restart under
/// seeded decorrelated-jitter backoff, crash-loopers trip their breaker
/// and are abandoned. Runs until SIGINT/SIGTERM (fleet stopped, exit 0)
/// or until every child has broken (exit 5).
fn cmd_shards(cli: &Cli) {
    let bfsimd = match &cli.bfsimd_path {
        Some(path) => PathBuf::from(path),
        // Default to the bfsimd sitting next to this bfsim binary —
        // the layout `cargo build` produces — falling back to $PATH.
        None => std::env::current_exe()
            .ok()
            .and_then(|exe| exe.parent().map(|dir| dir.join("bfsimd")))
            .filter(|candidate| candidate.exists())
            .unwrap_or_else(|| PathBuf::from("bfsimd")),
    };
    let addrs: Vec<String> = (0..cli.count)
        .map(|i| format!("127.0.0.1:{}", cli.base_port as usize + i))
        .collect();
    let mut args: Vec<String> = Vec::new();
    if let Some(dir) = &cli.cache_journal_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("creating {dir}: {e}")));
        args.push("--cache-journal".into());
        args.push(format!("{dir}/shard-{{port}}.jsonl"));
    }
    if let Some(plan) = &cli.fault_plan {
        args.push("--fault-plan".into());
        args.push(plan.clone());
    }
    let spec = SupervisorSpec {
        bfsimd,
        addrs: addrs.clone(),
        args,
        retry: RetryPolicy {
            base: Duration::from_millis(cli.retry_base_ms),
            seed: cli.retry_seed,
            ..RetryPolicy::default()
        },
        breaker: BreakerPolicy {
            max_restarts: cli.restart_limit,
            stable_uptime: Duration::from_millis(cli.stable_ms),
        },
    };
    let supervisor =
        service::Supervisor::spawn(spec).unwrap_or_else(|e| die(&format!("spawning fleet: {e}")));
    println!("shards: supervising {} bfsimd children", addrs.len());
    println!("  --shards {}", addrs.join(","));
    let stop = interrupt_flag();
    let stopped_by_signal = loop {
        if stop.load(Ordering::SeqCst) {
            supervisor.stop();
            break true;
        }
        if supervisor.finished() {
            break false;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    let report = supervisor.join();
    for child in &report.children {
        let status = match child.status {
            ChildStatus::Running => "running",
            ChildStatus::Backoff => "backoff",
            ChildStatus::Broken => "BROKEN (crash-looped)",
            ChildStatus::Stopped => "stopped",
        };
        println!(
            "shard {}: {status} | started {} time(s)",
            child.addr, child.restarts
        );
    }
    if !stopped_by_signal {
        obs::error!(target: "bfsim",
            "every supervised shard crash-looped; breakers open, giving up");
        std::process::exit(5);
    }
}

/// Merge a span-bearing sweep report into one Chrome trace-event JSON
/// document. Validation first: every cell's spans must form exactly one
/// rooted tree (one root whose span id is the trace id, every other
/// span's parent present in the same trace) — a violation means the
/// propagation chain broke somewhere and exits 6 rather than rendering
/// a misleading timeline.
fn cmd_timeline(cli: &Cli) {
    // Only the `spans` field matters here; unknown fields are ignored,
    // so any report revision ≥ 1 parses (a v1 report just has no spans).
    #[derive(Deserialize)]
    struct TimelineDoc {
        #[serde(default)]
        spans: Vec<coord::SpanDoc>,
    }
    let path = cli.input.clone().unwrap_or_else(|| "SWEEP.json".into());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| die_data(&format!("reading sweep report {path}: {e}")));
    let doc: TimelineDoc = serde_json::from_str(&text)
        .unwrap_or_else(|e| die_data(&format!("parsing sweep report {path}: {e}")));
    if doc.spans.is_empty() {
        die_data(&format!(
            "{path} carries no spans (was the sweep run with --spans?)"
        ));
    }
    let sources: Vec<obs::SpanSource> = doc.spans.into_iter().map(Into::into).collect();
    let merged: Vec<obs::SpanRecord> = sources
        .iter()
        .flat_map(|s| s.spans.iter().cloned())
        .collect();
    let summary = obs::validate_forest(&merged)
        .unwrap_or_else(|e| die_data(&format!("{path}: span forest is malformed: {e}")));
    let rendered = obs::render_chrome_trace(&sources);
    match &cli.out {
        Some(out) => {
            std::fs::write(out, &rendered).unwrap_or_else(|e| die(&format!("writing {out}: {e}")));
            println!(
                "timeline: {} spans across {} cell traces from {} sources -> {out}",
                summary.spans,
                summary.traces,
                sources.len()
            );
        }
        None => println!("{rendered}"),
    }
}

fn cmd_coord_status(cli: &Cli) {
    // Offline views first: a sweep journal (--journal) and/or a finished
    // report (--in). Either makes --shards optional, so an operator can
    // inspect recovery state with no fleet running at all.
    let mut offline = false;
    if let Some(path) = &cli.journal {
        offline = true;
        match SweepJournal::inspect(Path::new(path)) {
            Ok(stats) => println!(
                "journal {path}: plan {:#018x} over {} shard(s) | {}/{} cells done | \
                 {} failed | {} duplicate records | {} bytes dropped from torn tail",
                stats.plan_hash,
                stats.shards,
                stats.done,
                stats.cells,
                stats.failed,
                stats.duplicates,
                stats.dropped_bytes
            ),
            Err(err) => die_data(&format!("inspecting journal {path}: {err}")),
        }
    }
    if let Some(path) = &cli.input {
        offline = true;
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die_data(&format!("reading sweep report {path}: {e}")));
        let report: SweepReport = serde_json::from_str(&text)
            .unwrap_or_else(|e| die_data(&format!("parsing sweep report {path}: {e}")));
        let dead = report.shards.iter().filter(|s| s.dead).count();
        println!(
            "report {path}: {} cells | {} failed | {} replayed from journal | \
             {} shard deaths | {} rejoins | {dead} dead at end{}{}",
            report.cells.len(),
            report.failed.len(),
            report.replayed,
            report.deaths,
            report.rejoins,
            if report.degraded { " | DEGRADED" } else { "" },
            if report.interrupted {
                " | INTERRUPTED"
            } else {
                ""
            },
        );
    }
    if cli.shards.is_empty() {
        if offline {
            return;
        }
        die("coord-status needs --shards HOST:PORT[,HOST:PORT...] (or --journal / --in)");
    }
    let mut reachable = 0usize;
    for addr in &cli.shards {
        let mut client = ResilientClient::new(addr.clone(), client_options(cli));
        let polled = (|| -> Result<_, ClientError> {
            let caps = client.capabilities()?;
            let health = client.health()?;
            let stats = client.stats()?;
            Ok((caps, health, stats))
        })();
        let (caps, health, stats) = match polled {
            Ok(row) => row,
            Err(err) => {
                println!("{addr}: DOWN ({err})");
                continue;
            }
        };
        reachable += 1;
        let lookups = stats.cache_hits + stats.cache_misses;
        let hit_rate = if lookups > 0 {
            100.0 * stats.cache_hits as f64 / lookups as f64
        } else {
            0.0
        };
        let state = if caps.draining {
            "draining"
        } else if health.ready {
            "ready"
        } else {
            "not ready"
        };
        println!(
            "{addr}: {state} | proto v{} | {} workers | queue {}/{} | \
             {} in flight | cache {} entries ({hit_rate:.0}% hits) | \
             {} completed | {} retries-worth requeued",
            caps.proto,
            caps.workers,
            health.queue_depth,
            health.queue_cap,
            health.in_flight,
            health.cache_entries,
            stats.completed,
            stats.rejected + stats.shed,
        );
        if let Some(j) = &health.journal {
            println!(
                "  journal: {} ({} replayed, {} bytes dropped from torn tail)",
                j.path, j.replayed, j.dropped_bytes
            );
        }
    }
    if reachable == 0 {
        obs::error!(target: "bfsim", "no shard reachable");
        std::process::exit(3);
    }
    println!("{reachable}/{} shards reachable", cli.shards.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    init_logging(&args);
    let cli = parse_cli(&args);
    match cli.command.as_str() {
        "simulate" => cmd_simulate(&cli),
        "generate" => cmd_generate(&cli),
        "inspect" => cmd_inspect(&cli),
        "compare" => cmd_compare(&cli),
        "submit" => cmd_submit(&cli),
        "stats" => cmd_stats(&cli),
        "metrics" => cmd_metrics(&cli),
        "health" => cmd_health(&cli),
        "shutdown" => cmd_shutdown(&cli),
        "bench" => cmd_bench(&cli),
        "sweep" => cmd_sweep(&cli),
        "shards" => cmd_shards(&cli),
        "timeline" => cmd_timeline(&cli),
        "coord-status" => cmd_coord_status(&cli),
        other => die(&format!(
            "unknown command {other:?} \
             (simulate|generate|inspect|compare|submit|stats|metrics|health|shutdown|bench|\
             sweep|shards|timeline|coord-status)"
        )),
    }
}
