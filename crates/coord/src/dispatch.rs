//! Work-stealing sweep dispatcher.
//!
//! One sweep, N shards. Every unique cell starts on its *home* shard's
//! queue (cache affinity, see [`crate::plan`]); each shard gets a pool
//! of submitter threads bounded by its in-flight window (defaulting to
//! the worker count the shard reported in its `capabilities`
//! handshake). A submitter that drains its own queue steals from the
//! back of the longest live peer queue, so stragglers shed work to idle
//! shards instead of gating the sweep.
//!
//! # Exactly-once
//!
//! A cell is *in flight on at most one shard at a time*: it lives in
//! exactly one queue until popped, and is only requeued after its
//! current attempt returned an error. A shard that executed a cell but
//! died before answering may leave a duplicate server-side run, but the
//! runs are deterministic (equal canonical config ⇒ equal report) and
//! the coordinator records each cell's outcome slot once — the first
//! completed attempt wins, later ones are dropped by the slot guard. So
//! the merged report contains **exactly one result per unique cell**,
//! and resubmission after shard death is idempotent.
//!
//! # Shard death and rejoin
//!
//! A transport-terminal error (connect refused, timeout, EOF,
//! `ShuttingDown`) marks the shard dead: its queue drains into a global
//! injector that every live shard polls, the in-flight cell is
//! requeued, and the dead shard's submitters exit. When
//! [`SweepOptions::reprobe`] is set, a monitor thread periodically
//! re-handshakes every dead shard with the `capabilities` verb and
//! readmits one that answers: it is marked live again, `coord.rejoins`
//! is bumped, and a fresh pool of submitters is spawned for it — so a
//! SIGKILL'd daemon that a supervisor respawns finishes the sweep at
//! exit 0. *Degraded* therefore means "a shard was dead **at sweep
//! end**"; [`SweepOutcome::deaths`] records how many deaths happened
//! along the way. With no live shard left (beyond a reprobe grace
//! window), unresolved cells are reported failed rather than hanging
//! the sweep.
//!
//! # Crash recovery
//!
//! [`run_sweep_recoverable`] accepts an optional [`SweepJournal`]: the
//! moment a cell's outcome slot is won, the record is appended (and
//! flushed) to the journal, and cells replayed from a previous run's
//! journal are preloaded into their slots without dispatching. See
//! [`crate::journal`] for the replay invariants.

use crate::journal::{SweepJournal, SweepReplay};
use crate::plan::Plan;
use backfill_sim::RunConfig;
use obs::metrics::{Histogram, Registry};
use service::{Capabilities, ClientError, ClientOptions, ResilientClient, RunReport, ServiceStats};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Deadline/retry options for every per-shard client. The retry
    /// seed is decorrelated per shard and submitter internally.
    pub client: ClientOptions,
    /// In-flight submissions per shard. `None` (default) sizes each
    /// shard's window to the worker count it reports in the
    /// `capabilities` handshake.
    pub window: Option<usize>,
    /// Allow idle shards to steal queued cells from busy ones.
    pub steal: bool,
    /// How many times one cell may be requeued for *cell-level*
    /// retryable failures before it is reported failed. (Requeues
    /// caused by shard death are not counted: the shard, not the cell,
    /// was at fault, and each shard dies at most once.)
    pub max_requeues: u32,
    /// Collect distributed spans: the coordinator opens a root span per
    /// cell, propagates trace context on every submit, and drains each
    /// live shard's span buffer after the sweep into
    /// [`SweepOutcome::spans`]. Off by default (zero overhead).
    pub spans: bool,
    /// Re-handshake dead shards at this interval and readmit any that
    /// answer `capabilities` (and aren't draining). `None` (default)
    /// keeps the historical behaviour: dead stays dead.
    pub reprobe: Option<Duration>,
    /// Cooperative cancellation: when the flag flips true (e.g. from a
    /// SIGINT handler), submitters stop pulling new cells and the sweep
    /// returns with [`SweepOutcome::interrupted`] set. In-flight
    /// submits finish (and are journaled) first.
    pub interrupt: Option<Arc<AtomicBool>>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            client: ClientOptions::default(),
            window: None,
            steal: true,
            max_requeues: 3,
            spans: false,
            reprobe: None,
            interrupt: None,
        }
    }
}

/// Why a sweep could not start (startup failures; mid-sweep failures
/// degrade the [`SweepOutcome`] instead).
#[derive(Debug)]
pub enum SweepError {
    /// No shard addresses were given.
    NoShards,
    /// The cell list expanded to nothing.
    EmptySweep,
    /// A shard failed the startup `capabilities` handshake (or is
    /// already draining) — the sweep never began.
    ShardUnreachable {
        /// The shard's address.
        addr: String,
        /// The handshake error.
        err: ClientError,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::NoShards => write!(f, "no shards given"),
            SweepError::EmptySweep => write!(f, "sweep expands to zero cells"),
            SweepError::ShardUnreachable { addr, err } => {
                write!(f, "shard {addr} failed the capabilities handshake: {err}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// One completed cell.
#[derive(Debug, Clone)]
pub struct CellDone {
    /// Index into the plan's unique cell list.
    pub index: usize,
    /// Canonical content hash, as computed by the *daemon* (verified
    /// against the coordinator's own hash by the dispatcher).
    pub config_hash: u64,
    /// Shard that served it.
    pub shard: usize,
    /// True when the cell ran away from its home shard (stolen or
    /// redistributed after a shard death).
    pub stolen: bool,
    /// True when the shard answered from its result cache.
    pub cached: bool,
    /// Wall milliseconds the serving shard spent on it.
    pub wall_ms: u64,
    /// The full simulation report.
    pub report: RunReport,
}

/// One permanently failed cell.
#[derive(Debug, Clone)]
pub struct FailedCell {
    /// Index into the plan's unique cell list.
    pub index: usize,
    /// The coordinator-computed content hash.
    pub config_hash: u64,
    /// Human-readable terminal error.
    pub error: String,
}

/// Per-shard accounting for the `coord-status`-style summary.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// Shard address.
    pub addr: String,
    /// Worker threads the shard advertised at handshake.
    pub workers: u64,
    /// In-flight window the coordinator ran against it.
    pub window: usize,
    /// Cells homed on this shard by the plan.
    pub assigned: usize,
    /// Cells this shard completed.
    pub completed: u64,
    /// Completed cells that were homed elsewhere (stolen work).
    pub stolen: u64,
    /// Completed cells answered from the shard's result cache.
    pub cache_hits: u64,
    /// True when the shard died mid-sweep.
    pub dead: bool,
    /// p99 of coordinator-observed per-cell wall time against this
    /// shard, in milliseconds (straggler detection; 0 when idle).
    pub wall_ms_p99: u64,
}

/// Everything [`run_sweep`] produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Completed cells in plan order — exactly one per unique cell that
    /// succeeded.
    pub cells: Vec<CellDone>,
    /// Cells that failed permanently (empty on a clean sweep).
    pub failed: Vec<FailedCell>,
    /// Per-shard accounting, indexed like the input address list.
    pub shards: Vec<ShardSummary>,
    /// Cells executed away from their home shard due to stealing.
    pub steals: u64,
    /// Cells put back on the queue after a failed attempt.
    pub requeues: u64,
    /// Input cells that deduplicated onto an earlier identical cell.
    pub duplicates: usize,
    /// True when at least one shard was dead **at sweep end**. A shard
    /// that died and then rejoined (see [`SweepOptions::reprobe`]) does
    /// not degrade the sweep; `deaths` still records its death.
    pub degraded: bool,
    /// Shard deaths observed over the sweep (a shard that dies, rejoins
    /// and dies again counts twice).
    pub deaths: u64,
    /// Dead shards readmitted mid-sweep by the reprobe loop.
    pub rejoins: u64,
    /// Cells preloaded from a journal replay instead of dispatched.
    pub replayed: u64,
    /// True when the sweep stopped early because
    /// [`SweepOptions::interrupt`] flipped; unresolved cells are in
    /// `failed` but were *not* journaled, so a resume re-runs them.
    pub interrupted: bool,
    /// Field-wise sum of reachable shards' service stats after the
    /// sweep; `None` when no shard could be polled.
    pub stats: Option<ServiceStats>,
    /// Canonical merged metrics document (all reachable shards plus the
    /// coordinator's own `coord.*` registry); `None` when no shard
    /// could be polled.
    pub metrics_json: Option<String>,
    /// Collected span sources — the coordinator's own spans plus one
    /// entry per reachable shard — filtered to this sweep's trace ids.
    /// Empty unless [`SweepOptions::spans`] was on.
    pub spans: Vec<obs::SpanSource>,
}

struct Shared<'a> {
    plan: &'a Plan,
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Overflow queue every live shard polls: requeued cells and the
    /// drained queues of dead shards land here.
    injector: Mutex<VecDeque<usize>>,
    live: Vec<AtomicBool>,
    /// Unresolved unique cells (no recorded outcome yet).
    remaining: AtomicUsize,
    outcomes: Mutex<Vec<Option<Result<CellDone, String>>>>,
    /// Cell-level requeue attempts (shard deaths excluded).
    attempts: Vec<AtomicU64>,
    /// Span tracing on? When set, each slot of `started_us` records the
    /// monotonic micros of the cell's *first* attempt (0 = never ran),
    /// and outcome recording synthesizes the cell's root span.
    spans: bool,
    started_us: Vec<AtomicU64>,
    steals: AtomicU64,
    requeues: AtomicU64,
    deaths: AtomicU64,
    rejoins: AtomicU64,
    /// Set when any sweep-level span (reprobe, journal replay) was
    /// recorded, so span collection synthesizes the sweep root trace.
    sweep_spans: AtomicBool,
    /// Durable journal to append won outcomes to; `None` = in-memory
    /// only (the historical behaviour).
    journal: Option<&'a SweepJournal>,
    /// Cooperative cancellation flag (see [`SweepOptions::interrupt`]).
    interrupt: Option<Arc<AtomicBool>>,
    /// Coordinator-observed wall time per shard, for straggler p99.
    shard_wall: Vec<Arc<Histogram>>,
    registry: Registry,
}

impl Shared<'_> {
    /// Record a success; the slot guard makes completion exactly-once.
    /// The slot winner also appends the durable journal record (under
    /// the same lock, so the journal sees each cell at most once).
    fn record_done(&self, done: CellDone) {
        let mut outcomes = self.outcomes.lock().unwrap_or_else(|e| e.into_inner());
        let index = done.index;
        if outcomes[index].is_some() {
            obs::debug!(target: "coord",
                "duplicate completion of cell {index} dropped (shard {})", done.shard);
            return;
        }
        if let Some(journal) = self.journal {
            // A broken journal must not fail a healthy sweep: log and
            // keep going — the cell is simply not resumable.
            if let Err(err) = journal.append_done(&done) {
                obs::warn!(target: "coord", "journal append failed for cell {index}: {err}");
            }
        }
        outcomes[index] = Some(Ok(done));
        self.remaining.fetch_sub(1, Ordering::SeqCst);
        self.close_root(index);
    }

    /// Record a permanent failure (same slot guard, same journaling).
    fn record_failed(&self, index: usize, error: String) {
        let mut outcomes = self.outcomes.lock().unwrap_or_else(|e| e.into_inner());
        if outcomes[index].is_some() {
            return;
        }
        obs::warn!(target: "coord", "cell {index} failed permanently: {error}");
        if let Some(journal) = self.journal {
            if let Err(err) = journal.append_failed(index, self.plan.hashes[index], &error) {
                obs::warn!(target: "coord", "journal append failed for cell {index}: {err}");
            }
        }
        outcomes[index] = Some(Err(error));
        self.remaining.fetch_sub(1, Ordering::SeqCst);
        self.close_root(index);
    }

    /// True once the cooperative cancellation flag flipped.
    fn interrupted(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::SeqCst))
    }

    /// Synthesize the cell's root span, spanning first attempt → final
    /// outcome. Roots use the trace id as their span id so shard-side
    /// children (which only know the trace context) parent correctly.
    /// Runs at most once per cell — only the slot-guard winner calls it.
    fn close_root(&self, index: usize) {
        if !self.spans {
            return;
        }
        let started = self.started_us[index].load(Ordering::SeqCst);
        if started == 0 {
            return; // never attempted: no children exist, no root owed
        }
        let trace_id = self.plan.hashes[index];
        obs::span::record_raw(obs::SpanRecord {
            trace_id,
            span_id: trace_id,
            parent_id: 0,
            name: "cell".to_string(),
            start_us: started,
            dur_us: obs::span::now_micros().saturating_sub(started),
        });
    }

    fn requeue(&self, index: usize) {
        self.requeues.fetch_add(1, Ordering::Relaxed);
        self.registry.counter("coord.requeues").inc();
        self.injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(index);
    }

    /// Mark `shard` dead (idempotent per death — a rejoined shard can
    /// die again) and move its queue to the injector so live shards
    /// pick the work up.
    fn mark_dead(&self, shard: usize, addr: &str, why: &ClientError) {
        if !self.live[shard].swap(false, Ordering::SeqCst) {
            return;
        }
        self.deaths.fetch_add(1, Ordering::SeqCst);
        self.registry.counter("coord.shard_deaths").inc();
        let orphans: Vec<usize> = {
            let mut queue = self.queues[shard].lock().unwrap_or_else(|e| e.into_inner());
            queue.drain(..).collect()
        };
        obs::warn!(target: "coord",
            "shard {shard} ({addr}) died mid-sweep ({why}); redistributing {} queued cells",
            orphans.len());
        let mut injector = self.injector.lock().unwrap_or_else(|e| e.into_inner());
        injector.extend(orphans);
    }

    fn any_live(&self) -> bool {
        self.live.iter().any(|l| l.load(Ordering::SeqCst))
    }

    /// Next cell for a submitter of `shard`: own queue first, then the
    /// injector, then (if allowed) the back of the longest live peer
    /// queue. The bool marks work executing away from its home shard.
    fn next_cell(&self, shard: usize, steal: bool) -> Option<(usize, bool)> {
        if let Some(i) = self.queues[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            // Own-queue work may still be foreign: requeued cells of a
            // dead home shard flow through the injector. Telling the
            // two apart needs only the home map.
            return Some((i, self.plan.home[i] != shard));
        }
        if let Some(i) = self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            return Some((i, self.plan.home[i] != shard));
        }
        if !steal {
            return None;
        }
        let victim = (0..self.queues.len())
            .filter(|&s| s != shard && self.live[s].load(Ordering::SeqCst))
            .max_by_key(|&s| {
                self.queues[s]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .len()
            })?;
        let stolen = self.queues[victim]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_back();
        if let Some(i) = stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
            self.registry.counter("coord.steals").inc();
            obs::debug!(target: "coord",
                "shard {shard} stole cell {i} from shard {victim}");
            return Some((i, true));
        }
        None
    }
}

/// The terminal error class of one submit attempt, after the resilient
/// client's own retry budget ran out.
enum Verdict {
    /// The shard itself is gone (or draining): transport-terminal.
    ShardFatal,
    /// The cell's attempt failed but the shard lives; worth requeueing.
    Retry,
    /// Deterministic failure: requeueing cannot help.
    Permanent,
}

fn classify(err: &ClientError) -> Verdict {
    match err {
        ClientError::Io(_) | ClientError::Timeout(_) | ClientError::ShuttingDown => {
            Verdict::ShardFatal
        }
        ClientError::Busy | ClientError::CorruptFrame(_) => Verdict::Retry,
        ClientError::Service { retryable, .. } => {
            if *retryable {
                Verdict::Retry
            } else {
                Verdict::Permanent
            }
        }
        ClientError::Protocol(_) => Verdict::Permanent,
        // The resilient client already spent its budget; judge by what
        // the final attempt died of.
        ClientError::Exhausted { last, .. } => classify(last),
    }
}

/// Decorrelate each submitter's backoff schedule so a fleet of
/// retrying clients never thunders in lockstep.
fn submitter_options(base: &ClientOptions, shard: usize, slot: usize) -> ClientOptions {
    let mut opts = *base;
    let lane = ((shard as u64) << 16) | (slot as u64 + 1);
    opts.retry.seed = base
        .retry
        .seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane));
    opts
}

/// Build a probe client config for reprobing dead shards: no internal
/// retries (each reprobe is one handshake attempt — important for
/// deterministic fault injection) and a tight deadline so one dead
/// shard can't stall the monitor past its interval for long.
fn probe_options(base: &ClientOptions) -> ClientOptions {
    let mut opts = *base;
    opts.retry.max_retries = 0;
    let cap = Duration::from_secs(2);
    opts.deadline = Some(opts.deadline.map_or(cap, |d| d.min(cap)));
    opts
}

/// Run `cells` across `shards`, returning exactly one result per unique
/// cell. See the [module docs](self) for the full protocol.
pub fn run_sweep(
    shards: &[String],
    cells: &[RunConfig],
    opts: &SweepOptions,
) -> Result<SweepOutcome, SweepError> {
    run_sweep_recoverable(shards, cells, opts, None, None)
}

/// [`run_sweep`] with durability: outcomes stream to `journal` as they
/// are won, and cells already resolved by a previous run (`resumed`)
/// are preloaded into their outcome slots without dispatching. The
/// caller is responsible for having validated the replay against this
/// exact cell list ([`SweepJournal::resume`] does).
pub fn run_sweep_recoverable(
    shards: &[String],
    cells: &[RunConfig],
    opts: &SweepOptions,
    journal: Option<&SweepJournal>,
    resumed: Option<&SweepReplay>,
) -> Result<SweepOutcome, SweepError> {
    if shards.is_empty() {
        return Err(SweepError::NoShards);
    }
    if cells.is_empty() {
        return Err(SweepError::EmptySweep);
    }
    let plan = Plan::new(cells, shards.len());
    let plan_hash = plan.content_hash();
    if opts.spans {
        obs::span::set_enabled(true);
    }
    let sweep_start_us = opts.spans.then(obs::span::now_micros).unwrap_or(0);

    // Preload journal-replayed outcomes: these cells are already
    // resolved, so they never enter a queue and are never re-journaled.
    let mut initial: Vec<Option<Result<CellDone, String>>> = vec![None; plan.len()];
    let mut resolved = vec![false; plan.len()];
    if let Some(replay) = resumed {
        for done in &replay.done {
            if done.index < plan.len() && initial[done.index].is_none() {
                resolved[done.index] = true;
                initial[done.index] = Some(Ok(done.clone()));
            }
        }
        for (index, _, error) in &replay.failed {
            if *index < plan.len() && initial[*index].is_none() {
                resolved[*index] = true;
                initial[*index] = Some(Err(error.clone()));
            }
        }
    }
    let replayed = resolved.iter().filter(|&&r| r).count();

    // Startup handshake: every shard must answer `capabilities` (and
    // not be draining) before any cell is submitted — a fleet typo
    // fails fast with a distinct exit code instead of degrading.
    let mut caps: Vec<Capabilities> = Vec::with_capacity(shards.len());
    for (i, addr) in shards.iter().enumerate() {
        let mut client = ResilientClient::new(addr.clone(), submitter_options(&opts.client, i, 0));
        let c = client
            .capabilities()
            .map_err(|err| SweepError::ShardUnreachable {
                addr: addr.clone(),
                err,
            })?;
        if c.draining {
            return Err(SweepError::ShardUnreachable {
                addr: addr.clone(),
                err: ClientError::ShuttingDown,
            });
        }
        if c.proto != service::PROTO_VERSION {
            obs::warn!(target: "coord",
                "shard {addr} speaks protocol v{} (coordinator is v{})",
                c.proto, service::PROTO_VERSION);
        }
        caps.push(c);
    }
    let windows: Vec<usize> = caps
        .iter()
        .map(|c| opts.window.unwrap_or(c.workers.max(1) as usize).max(1))
        .collect();
    obs::info!(target: "coord",
        "sweep: {} unique cells ({} duplicates collapsed, {} replayed from journal) \
         across {} shards, windows {:?}",
        plan.len(), plan.duplicates(), replayed, shards.len(), windows);

    let registry = Registry::new();
    registry.counter("coord.cells").add(plan.len() as u64);
    registry
        .counter("coord.duplicates")
        .add(plan.duplicates() as u64);
    registry
        .counter("coord.journal_replayed")
        .add(replayed as u64);
    let shard_wall: Vec<Arc<Histogram>> = (0..shards.len())
        .map(|i| registry.histogram(&format!("coord.shard{i}.wall_ms")))
        .collect();
    let shared = Shared {
        plan: &plan,
        queues: (0..shards.len())
            .map(|s| {
                Mutex::new(
                    plan.assigned_to(s)
                        .into_iter()
                        .filter(|&i| !resolved[i])
                        .collect(),
                )
            })
            .collect(),
        injector: Mutex::new(VecDeque::new()),
        live: (0..shards.len()).map(|_| AtomicBool::new(true)).collect(),
        remaining: AtomicUsize::new(plan.len() - replayed),
        outcomes: Mutex::new(initial),
        attempts: (0..plan.len()).map(|_| AtomicU64::new(0)).collect(),
        spans: opts.spans,
        started_us: (0..plan.len()).map(|_| AtomicU64::new(0)).collect(),
        steals: AtomicU64::new(0),
        requeues: AtomicU64::new(0),
        deaths: AtomicU64::new(0),
        rejoins: AtomicU64::new(0),
        sweep_spans: AtomicBool::new(false),
        journal,
        interrupt: opts.interrupt.clone(),
        shard_wall,
        registry,
    };
    if opts.spans && replayed > 0 {
        // The replay itself happened in the caller; give it a span
        // under the sweep root so resumed timelines show what was
        // skipped.
        shared.sweep_spans.store(true, Ordering::SeqCst);
        obs::span::record_raw(obs::SpanRecord {
            trace_id: plan_hash,
            span_id: obs::span::next_span_id(),
            parent_id: plan_hash,
            name: "journal.replay".to_string(),
            start_us: sweep_start_us,
            dur_us: obs::span::now_micros().saturating_sub(sweep_start_us),
        });
    }

    std::thread::scope(|scope| {
        for shard in 0..shards.len() {
            spawn_submitters(scope, &shared, shards, windows.as_slice(), opts, shard);
        }
        if let Some(interval) = opts.reprobe {
            let shared = &shared;
            let windows = windows.as_slice();
            scope.spawn(move || {
                monitor_dead_shards(scope, shared, shards, windows, opts, interval, plan_hash)
            });
        }
    });

    // Cells no shard lived long enough to resolve (or the user
    // interrupted). These bypass `record_failed` on purpose: they must
    // NOT be journaled as permanent failures — a resume re-runs them.
    let interrupted = shared.interrupted();
    {
        let fate = if interrupted {
            "sweep interrupted before this cell resolved"
        } else {
            "all shards died before this cell ran"
        };
        let mut outcomes = shared.outcomes.lock().unwrap_or_else(|e| e.into_inner());
        for slot in outcomes.iter_mut() {
            if slot.is_none() {
                *slot = Some(Err(fate.into()));
            }
        }
    }

    let outcomes = shared
        .outcomes
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    let mut done: Vec<CellDone> = Vec::with_capacity(plan.len());
    let mut failed: Vec<FailedCell> = Vec::new();
    for (index, slot) in outcomes.into_iter().enumerate() {
        match slot.expect("every cell resolved above") {
            Ok(cell) => done.push(cell),
            Err(error) => failed.push(FailedCell {
                index,
                config_hash: plan.hashes[index],
                error,
            }),
        }
    }

    let summaries: Vec<ShardSummary> = shards
        .iter()
        .enumerate()
        .map(|(s, addr)| {
            let completed = done.iter().filter(|c| c.shard == s).count() as u64;
            ShardSummary {
                addr: addr.clone(),
                workers: caps[s].workers,
                window: windows[s],
                assigned: plan.assigned_to(s).len(),
                completed,
                stolen: done.iter().filter(|c| c.shard == s && c.stolen).count() as u64,
                cache_hits: done.iter().filter(|c| c.shard == s && c.cached).count() as u64,
                dead: !shared.live[s].load(Ordering::SeqCst),
                wall_ms_p99: shared.shard_wall[s]
                    .snapshot()
                    .approx_quantile(0.99)
                    .unwrap_or(0),
            }
        })
        .collect();

    // Post-sweep aggregation: poll every shard that still answers. A
    // dead shard is skipped — its completed work is already in `done`.
    let mut shard_stats: Vec<ServiceStats> = Vec::new();
    let mut shard_metrics: Vec<String> = Vec::new();
    for (s, addr) in shards.iter().enumerate() {
        if !shared.live[s].load(Ordering::SeqCst) {
            continue;
        }
        let mut client = ResilientClient::new(addr.clone(), opts.client);
        match (client.stats(), client.metrics()) {
            (Ok(st), Ok(m)) => {
                shard_stats.push(st);
                shard_metrics.push(m);
            }
            (st, m) => {
                let err = st.err().or(m.err()).expect("one of the polls failed");
                obs::warn!(target: "coord",
                    "shard {addr} unreachable for post-sweep aggregation: {err}");
            }
        }
    }
    let stats = (!shard_stats.is_empty()).then(|| crate::aggregate::aggregate_stats(&shard_stats));
    let metrics_json = (!shard_metrics.is_empty())
        .then(|| crate::aggregate::aggregate_metrics(&shard_metrics, &[shared.registry.snapshot()]))
        .transpose()
        .unwrap_or_else(|e| {
            obs::warn!(target: "coord", "metrics aggregation failed: {e}");
            None
        });

    // Span collection: the coordinator's own buffer plus every live
    // shard's, filtered to this sweep's trace ids so concurrent sweeps
    // against shared daemons don't leak into each other's timelines.
    let spans = if opts.spans {
        let mut wanted: std::collections::HashSet<u64> = plan.hashes.iter().copied().collect();
        if shared.sweep_spans.load(Ordering::SeqCst) {
            // Sweep-level events (reprobes, journal replay) hang off a
            // synthesized root keyed by the plan hash.
            wanted.insert(plan_hash);
            obs::span::record_raw(obs::SpanRecord {
                trace_id: plan_hash,
                span_id: plan_hash,
                parent_id: 0,
                name: "sweep".to_string(),
                start_us: sweep_start_us,
                dur_us: obs::span::now_micros().saturating_sub(sweep_start_us),
            });
        }
        let mut sources = vec![obs::SpanSource {
            name: "coordinator".to_string(),
            spans: obs::span::drain()
                .into_iter()
                .filter(|s| wanted.contains(&s.trace_id))
                .collect(),
        }];
        for (s, addr) in shards.iter().enumerate() {
            if !shared.live[s].load(Ordering::SeqCst) {
                continue;
            }
            let mut client = ResilientClient::new(addr.clone(), opts.client);
            match client.spans() {
                Ok(wire) => sources.push(obs::SpanSource {
                    name: addr.clone(),
                    spans: wire
                        .into_iter()
                        .map(obs::SpanRecord::from)
                        .filter(|s| wanted.contains(&s.trace_id))
                        .collect(),
                }),
                Err(err) => {
                    obs::warn!(target: "coord",
                        "shard {addr} unreachable for span collection: {err}");
                }
            }
        }
        sources
    } else {
        Vec::new()
    };

    Ok(SweepOutcome {
        cells: done,
        failed,
        shards: summaries,
        steals: shared.steals.load(Ordering::SeqCst),
        requeues: shared.requeues.load(Ordering::SeqCst),
        duplicates: plan.duplicates(),
        // Dead *now*, not "ever died": a shard the reprobe loop
        // readmitted healed the sweep.
        degraded: shared.live.iter().any(|live| !live.load(Ordering::SeqCst)),
        deaths: shared.deaths.load(Ordering::SeqCst),
        rejoins: shared.rejoins.load(Ordering::SeqCst),
        replayed: replayed as u64,
        interrupted,
        stats,
        metrics_json,
        spans,
    })
}

/// Spawn one submitter thread per window slot for `shard` inside
/// `scope`. Called at sweep start for every shard and again by the
/// monitor when a dead shard rejoins (the slot seeds repeat across a
/// rejoin, which keeps backoff decorrelation per shard/slot intact).
fn spawn_submitters<'scope, 'env, 'p>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    shared: &'env Shared<'p>,
    shards: &'env [String],
    windows: &'env [usize],
    opts: &'env SweepOptions,
    shard: usize,
) {
    let addr = &shards[shard];
    for slot in 0..windows[shard] {
        let client_opts = submitter_options(&opts.client, shard, slot);
        let steal = opts.steal;
        let max_requeues = opts.max_requeues;
        scope.spawn(move || submitter_loop(shared, shard, addr, client_opts, steal, max_requeues));
    }
}

/// The rejoin monitor: while cells remain, periodically re-handshake
/// every dead shard and readmit any that answers `capabilities` without
/// draining. Each reprobe is exactly one connection + one handshake
/// (no client-internal retries), so injected `connect@`/`handshake@`
/// faults map 1:1 onto reprobe attempts. When *no* shard is live the
/// monitor keeps probing for a bounded grace window — long enough for a
/// supervisor to respawn the fleet — then gives up so the sweep can
/// fail instead of hanging.
fn monitor_dead_shards<'scope, 'env, 'p>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    shared: &'env Shared<'p>,
    shards: &'env [String],
    windows: &'env [usize],
    opts: &'env SweepOptions,
    interval: Duration,
    plan_hash: u64,
) {
    let probe_opts = probe_options(&opts.client);
    let grace = (interval * 20).clamp(Duration::from_secs(2), Duration::from_secs(60));
    let mut all_dead_since: Option<Instant> = None;
    'monitor: loop {
        // Sleep in short slices so sweep completion (or an interrupt)
        // ends the monitor promptly instead of after a full interval.
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shared.remaining.load(Ordering::SeqCst) == 0 || shared.interrupted() {
                break 'monitor;
            }
            let slice = interval
                .saturating_sub(slept)
                .min(Duration::from_millis(25));
            std::thread::sleep(slice);
            slept += slice;
        }
        if shared.remaining.load(Ordering::SeqCst) == 0 || shared.interrupted() {
            break;
        }
        for shard in 0..shards.len() {
            if shared.live[shard].load(Ordering::SeqCst) {
                continue;
            }
            let reprobe_span = shared.spans.then(|| {
                shared.sweep_spans.store(true, Ordering::SeqCst);
                obs::Span::child(
                    obs::SpanContext {
                        trace_id: plan_hash,
                        span_id: plan_hash,
                    },
                    "reprobe",
                )
            });
            let mut probe = ResilientClient::new(shards[shard].clone(), probe_opts);
            match probe.capabilities() {
                Ok(caps) if !caps.draining => {
                    shared.live[shard].store(true, Ordering::SeqCst);
                    shared.rejoins.fetch_add(1, Ordering::SeqCst);
                    shared.registry.counter("coord.rejoins").inc();
                    obs::info!(target: "coord",
                        "shard {shard} ({}) answered the reprobe handshake; \
                         rejoining the sweep with {} submitters",
                        shards[shard], windows[shard]);
                    spawn_submitters(scope, shared, shards, windows, opts, shard);
                }
                Ok(_) => {
                    obs::debug!(target: "coord",
                        "shard {shard} ({}) is up but draining; not rejoined", shards[shard]);
                }
                Err(err) => {
                    obs::debug!(target: "coord",
                        "reprobe of shard {shard} ({}) failed: {err}", shards[shard]);
                }
            }
            drop(reprobe_span);
        }
        if shared.any_live() {
            all_dead_since = None;
        } else {
            match all_dead_since {
                None => all_dead_since = Some(Instant::now()),
                Some(t0) if t0.elapsed() > grace => {
                    obs::warn!(target: "coord",
                        "no shard came back within the {:?} reprobe grace window; giving up",
                        grace);
                    break;
                }
                Some(_) => {}
            }
        }
    }
    if shared.spans {
        obs::span::flush_thread();
    }
}

/// One submitter thread: pops cells, submits them through its own
/// resilient client, and routes failures per the module-level protocol.
fn submitter_loop(
    shared: &Shared<'_>,
    shard: usize,
    addr: &str,
    client_opts: ClientOptions,
    steal: bool,
    max_requeues: u32,
) {
    submitter_work(shared, shard, addr, client_opts, steal, max_requeues);
    // Hand this thread's buffered spans (attempt spans, synthesized
    // roots) to the global sink before the scope reaps the thread.
    if shared.spans {
        obs::span::flush_thread();
    }
}

fn submitter_work(
    shared: &Shared<'_>,
    shard: usize,
    addr: &str,
    client_opts: ClientOptions,
    steal: bool,
    max_requeues: u32,
) {
    let mut client = ResilientClient::new(addr, client_opts);
    while shared.remaining.load(Ordering::SeqCst) > 0 {
        if shared.interrupted() {
            return; // stop pulling; unresolved cells stay resumable
        }
        if !shared.live[shard].load(Ordering::SeqCst) {
            return; // our shard died; survivors own the rest
        }
        let Some((index, stolen)) = shared.next_cell(shard, steal) else {
            if !shared.any_live() {
                return;
            }
            std::thread::sleep(Duration::from_micros(500));
            continue;
        };
        // Each attempt gets its own span under the cell's root (the
        // root's span id is the trace id itself, so no handoff needed);
        // the daemon parents its spans under this attempt via the wire
        // context. The first attempt also stamps the root's start time.
        let hash = shared.plan.hashes[index];
        let attempt_span = shared.spans.then(|| {
            let _ = shared.started_us[index].compare_exchange(
                0,
                obs::span::now_micros().max(1),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
            obs::Span::child(
                obs::SpanContext {
                    trace_id: hash,
                    span_id: hash,
                },
                "attempt",
            )
        });
        let trace = attempt_span.as_ref().map(|s| service::TraceContext {
            trace_id: hash,
            parent_span: s.ctx().map_or(hash, |c| c.span_id),
        });
        let t0 = Instant::now();
        match client.submit_traced(&shared.plan.cells[index], trace) {
            Ok(reply) => {
                shared.shard_wall[shard].record(t0.elapsed().as_millis() as u64);
                if reply.config_hash != shared.plan.hashes[index] {
                    // The daemon and coordinator disagree on the canonical
                    // hash: a version skew loud enough to fail the cell.
                    shared.record_failed(
                        index,
                        format!(
                            "shard {addr} hashed the config as {:#018x}, \
                             coordinator computed {:#018x} (version skew?)",
                            reply.config_hash, shared.plan.hashes[index]
                        ),
                    );
                    continue;
                }
                shared.record_done(CellDone {
                    index,
                    config_hash: reply.config_hash,
                    shard,
                    stolen,
                    cached: reply.cached,
                    wall_ms: reply.wall_ms,
                    report: reply.report,
                });
            }
            Err(err) => match classify(&err) {
                Verdict::ShardFatal => {
                    shared.mark_dead(shard, addr, &err);
                    shared.requeue(index);
                    return;
                }
                Verdict::Retry => {
                    let tries = shared.attempts[index].fetch_add(1, Ordering::SeqCst) + 1;
                    if tries > max_requeues as u64 {
                        shared.record_failed(
                            index,
                            format!("gave up after {tries} requeues; last error: {err}"),
                        );
                    } else {
                        shared.requeue(index);
                    }
                }
                Verdict::Permanent => shared.record_failed(index, err.to_string()),
            },
        }
    }
}
