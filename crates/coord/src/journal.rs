//! Durable sweep journal: crash recovery for the coordinator.
//!
//! A sweep journal is an append-only JSONL file mirroring the cache
//! journal's discipline (see `service::cache`): every line is
//! `{"crc":C,"record":R}` where `C` is the FNV-1a 64 hash of `R`'s
//! canonical serialization. The first record is a **plan header**
//! pinning the planned cell set ([`Plan::content_hash`] plus every
//! per-cell content hash); each subsequent record is one resolved cell
//! (`Done` or `Failed`), appended by the dispatcher the moment the
//! cell's outcome slot is won.
//!
//! # Replay invariants
//!
//! - The header must be the file's first valid record and must match
//!   the re-planned sweep exactly — a mismatch is a hard
//!   [`JournalError::PlanMismatch`] (CLI exit 6), never a silent
//!   partial resume.
//! - A checksum-valid record that contradicts the plan (index out of
//!   range, or `config_hash` differing from the plan's hash at that
//!   index) is a hard [`JournalError::BadRecord`] (exit 6): the journal
//!   belongs to some other sweep and resuming would fabricate results.
//! - Duplicate records for one cell are resolved **first-writer-wins**,
//!   matching the dispatcher's in-memory outcome-slot guard; later
//!   duplicates are counted and dropped.
//! - Replay stops at the first torn line (unterminated, non-UTF-8,
//!   non-JSON, or checksum-failing) and truncates the file back to the
//!   good prefix, so a crash mid-append costs at most the record being
//!   written.
//!
//! Because replayed cells re-enter the outcome table verbatim and the
//! remainder is re-planned identically, a resumed sweep's canonical
//! report is byte-identical to an uninterrupted run's.

use crate::dispatch::CellDone;
use crate::plan::Plan;
use backfill_sim::canon::fnv1a_64;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One journal line: the checksummed envelope around a [`SweepRecord`].
#[derive(Debug, Serialize, Deserialize)]
struct JournalLine {
    /// FNV-1a 64 of the serialized `record`.
    crc: u64,
    /// The payload.
    record: SweepRecord,
}

/// One durable sweep event.
// `Done` dominates the enum's size via its embedded report, but records
// only ever exist one at a time on the append/replay paths — never in
// bulk — so indirection would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SweepRecord {
    /// The header: identity of the planned cell set. Written exactly
    /// once, as the first record.
    Plan {
        /// [`Plan::content_hash`] of the sweep being journaled.
        plan_hash: u64,
        /// Shard count at write time (informational: resume may run
        /// against a different fleet).
        shards: usize,
        /// Per-cell content hashes in plan order.
        hashes: Vec<u64>,
    },
    /// A cell completed; mirrors [`CellDone`] field-for-field so replay
    /// reconstructs the outcome verbatim.
    Done {
        /// Index into the plan's unique cell list.
        index: usize,
        /// Canonical content hash (daemon-computed, parity-checked).
        config_hash: u64,
        /// Shard that served it (historical: an index into the fleet
        /// that ran the cell, which may differ from the resuming one).
        shard: usize,
        /// True when the cell ran away from its home shard.
        stolen: bool,
        /// True when the shard answered from its result cache.
        cached: bool,
        /// Wall milliseconds the serving shard spent on it.
        wall_ms: u64,
        /// The full simulation report.
        report: service::RunReport,
    },
    /// A cell failed permanently (requeue budget exhausted or a
    /// non-retryable error).
    Failed {
        /// Index into the plan's unique cell list.
        index: usize,
        /// The coordinator-computed content hash.
        config_hash: u64,
        /// Human-readable terminal error.
        error: String,
    },
}

/// Why a journal could not be replayed. Every variant maps to CLI
/// exit 6 (bad data): resuming from a journal we cannot trust would
/// fabricate sweep results.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The journal has no valid plan header (empty file, torn first
    /// line, or a first record that is not `Plan`).
    MissingHeader,
    /// The header's plan hash does not match the re-planned sweep.
    PlanMismatch {
        /// Hash of the sweep being resumed (from `Plan::content_hash`).
        expected: u64,
        /// Hash recorded in the journal header.
        found: u64,
    },
    /// A checksum-valid record contradicts the plan.
    BadRecord {
        /// 1-based line number of the offending record.
        line: usize,
        /// What was wrong with it.
        why: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(err) => write!(f, "journal io error: {err}"),
            JournalError::MissingHeader => {
                write!(f, "journal has no valid plan header record")
            }
            JournalError::PlanMismatch { expected, found } => write!(
                f,
                "journal plan hash {found:#018x} does not match this sweep's \
                 plan hash {expected:#018x} (different spec or cell set)"
            ),
            JournalError::BadRecord { line, why } => {
                write!(f, "journal line {line}: {why}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(err: io::Error) -> Self {
        JournalError::Io(err)
    }
}

/// What replaying a journal recovered, fed back into the dispatcher so
/// resolved cells are marked done without dispatching.
#[derive(Debug, Clone, Default)]
pub struct SweepReplay {
    /// Completed cells, reconstructed verbatim.
    pub done: Vec<CellDone>,
    /// Permanently failed cells: `(index, config_hash, error)`.
    pub failed: Vec<(usize, u64, String)>,
    /// Duplicate cell records dropped (first-writer-wins).
    pub duplicates: u64,
    /// True when a torn tail was cut off the file.
    pub truncated: bool,
    /// Bytes dropped with the torn tail.
    pub dropped_bytes: u64,
}

impl SweepReplay {
    /// Cells the replay resolved (done + failed).
    pub fn resolved(&self) -> usize {
        self.done.len() + self.failed.len()
    }
}

/// Plan-free summary of a journal file, for `bfsim coord-status`.
#[derive(Debug, Clone)]
pub struct JournalStats {
    /// Plan hash from the header.
    pub plan_hash: u64,
    /// Shard count recorded in the header.
    pub shards: usize,
    /// Unique cells the plan header declares.
    pub cells: usize,
    /// `Done` records replayed.
    pub done: usize,
    /// `Failed` records replayed.
    pub failed: usize,
    /// Duplicate cell records dropped.
    pub duplicates: u64,
    /// Bytes in the torn tail (0 for a clean file).
    pub dropped_bytes: u64,
}

/// An open sweep journal: replay happened at construction, appends are
/// durable per-record (flushed line-by-line, so a SIGKILL costs at most
/// the line being written).
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    file: Mutex<File>,
    appended: AtomicU64,
}

impl SweepJournal {
    /// Start a fresh journal for `plan` at `path`, truncating anything
    /// already there and writing the plan header.
    pub fn create(path: &Path, plan: &Plan) -> io::Result<SweepJournal> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        write_record(
            &mut file,
            &SweepRecord::Plan {
                plan_hash: plan.content_hash(),
                shards: plan.shards,
                hashes: plan.hashes.clone(),
            },
        )?;
        Ok(SweepJournal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            appended: AtomicU64::new(0),
        })
    }

    /// Reopen an existing journal against the re-planned sweep:
    /// validate the header, replay resolved cells, truncate any torn
    /// tail, and hold the file open for further appends.
    pub fn resume(path: &Path, plan: &Plan) -> Result<(SweepJournal, SweepReplay), JournalError> {
        let (good_len, records, dropped_bytes) = scan(path)?;
        let mut lines = records.into_iter().enumerate();
        let Some((
            _,
            SweepRecord::Plan {
                plan_hash, hashes, ..
            },
        )) = lines.next()
        else {
            return Err(JournalError::MissingHeader);
        };
        let expected = plan.content_hash();
        if plan_hash != expected || hashes != plan.hashes {
            return Err(JournalError::PlanMismatch {
                expected,
                found: plan_hash,
            });
        }
        let mut replay = SweepReplay {
            truncated: dropped_bytes > 0,
            dropped_bytes,
            ..SweepReplay::default()
        };
        let mut resolved = vec![false; plan.len()];
        for (at, record) in lines {
            let line = at + 1; // 1-based for humans
            let (index, config_hash) = match &record {
                SweepRecord::Plan { .. } => {
                    return Err(JournalError::BadRecord {
                        line,
                        why: "second plan header".to_string(),
                    })
                }
                SweepRecord::Done {
                    index, config_hash, ..
                }
                | SweepRecord::Failed {
                    index, config_hash, ..
                } => (*index, *config_hash),
            };
            if index >= plan.len() {
                return Err(JournalError::BadRecord {
                    line,
                    why: format!("cell index {index} outside the {}-cell plan", plan.len()),
                });
            }
            if config_hash != plan.hashes[index] {
                return Err(JournalError::BadRecord {
                    line,
                    why: format!(
                        "config_hash {config_hash:#018x} is not the plan's hash \
                         {:#018x} for cell {index}",
                        plan.hashes[index]
                    ),
                });
            }
            if resolved[index] {
                replay.duplicates += 1;
                continue;
            }
            resolved[index] = true;
            match record {
                SweepRecord::Done {
                    index,
                    config_hash,
                    shard,
                    stolen,
                    cached,
                    wall_ms,
                    report,
                } => replay.done.push(CellDone {
                    index,
                    config_hash,
                    shard,
                    stolen,
                    cached,
                    wall_ms,
                    report,
                }),
                SweepRecord::Failed {
                    index,
                    config_hash,
                    error,
                } => replay.failed.push((index, config_hash, error)),
                SweepRecord::Plan { .. } => unreachable!("rejected above"),
            }
        }
        // Cut the torn tail (no-op for a clean file), then reopen in
        // append mode for the resumed sweep's own records.
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.set_len(good_len)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((
            SweepJournal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
                appended: AtomicU64::new(0),
            },
            replay,
        ))
    }

    /// Summarize a journal without a plan to validate against (for
    /// `coord-status`): header stats plus done/failed/duplicate counts.
    /// Per-record plan consistency is *not* checked here — only
    /// checksums and the header's presence.
    pub fn inspect(path: &Path) -> Result<JournalStats, JournalError> {
        let (_, records, dropped_bytes) = scan(path)?;
        let mut lines = records.into_iter();
        let Some(SweepRecord::Plan {
            plan_hash,
            shards,
            hashes,
        }) = lines.next()
        else {
            return Err(JournalError::MissingHeader);
        };
        let mut stats = JournalStats {
            plan_hash,
            shards,
            cells: hashes.len(),
            done: 0,
            failed: 0,
            duplicates: 0,
            dropped_bytes,
        };
        let mut resolved = vec![false; hashes.len()];
        for record in lines {
            let index = match &record {
                SweepRecord::Plan { .. } => continue,
                SweepRecord::Done { index, .. } | SweepRecord::Failed { index, .. } => *index,
            };
            if let Some(slot) = resolved.get_mut(index) {
                if *slot {
                    stats.duplicates += 1;
                    continue;
                }
                *slot = true;
            }
            match record {
                SweepRecord::Done { .. } => stats.done += 1,
                SweepRecord::Failed { .. } => stats.failed += 1,
                SweepRecord::Plan { .. } => {}
            }
        }
        Ok(stats)
    }

    /// Append a completed cell. Errors are returned, not swallowed —
    /// the dispatcher logs and keeps sweeping (a broken journal must
    /// not fail a healthy sweep).
    pub fn append_done(&self, done: &CellDone) -> io::Result<()> {
        self.append(&SweepRecord::Done {
            index: done.index,
            config_hash: done.config_hash,
            shard: done.shard,
            stolen: done.stolen,
            cached: done.cached,
            wall_ms: done.wall_ms,
            report: done.report.clone(),
        })
    }

    /// Append a permanently failed cell.
    pub fn append_failed(&self, index: usize, config_hash: u64, error: &str) -> io::Result<()> {
        self.append(&SweepRecord::Failed {
            index,
            config_hash,
            error: error.to_string(),
        })
    }

    fn append(&self, record: &SweepRecord) -> io::Result<()> {
        let mut file = self.file.lock().expect("journal lock poisoned");
        write_record(&mut file, record)?;
        self.appended.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended since open (excludes replayed ones).
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }
}

/// Serialize, checksum, write, flush one record.
fn write_record(file: &mut File, record: &SweepRecord) -> io::Result<()> {
    let body = serde_json::to_string(record).expect("sweep records always serialize");
    let crc = fnv1a_64(body.as_bytes());
    // Assembled by hand so the crc covers exactly the `record` value's
    // bytes as written, independent of envelope field order.
    let line = format!("{{\"crc\":{crc},\"record\":{body}}}\n");
    file.write_all(line.as_bytes())?;
    file.flush()
}

/// Read `path` and split it into validated records, the byte length of
/// the good prefix, and the torn-tail size. The scan stops at the first
/// unterminated, non-UTF-8, non-JSON, or checksum-failing line.
fn scan(path: &Path) -> io::Result<(u64, Vec<SweepRecord>, u64)> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut bytes)?;
        }
        Err(err) if err.kind() == io::ErrorKind::NotFound => {}
        Err(err) => return Err(err),
    }
    let mut records = Vec::new();
    let mut good_len = 0usize;
    let mut rest = &bytes[..];
    while let Some(newline) = rest.iter().position(|&b| b == b'\n') {
        let line = &rest[..newline];
        let Ok(text) = std::str::from_utf8(line) else {
            break;
        };
        let Ok(parsed) = serde_json::from_str::<JournalLine>(text) else {
            break;
        };
        let body = serde_json::to_string(&parsed.record).expect("sweep records always serialize");
        if fnv1a_64(body.as_bytes()) != parsed.crc {
            break;
        }
        records.push(parsed.record);
        good_len += newline + 1;
        rest = &rest[newline + 1..];
    }
    let dropped = (bytes.len() - good_len) as u64;
    Ok((good_len as u64, records, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bench_lib::sweep::tiny_spec;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("bfsim-journal-{}-{name}.jsonl", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    fn tiny_plan() -> Plan {
        Plan::new(&tiny_spec().expand(), 2)
    }

    fn fake_done(plan: &Plan, index: usize) -> CellDone {
        let cfg = &plan.cells[index];
        let report = service::RunReport::from_schedule(cfg, &cfg.run());
        CellDone {
            index,
            config_hash: plan.hashes[index],
            shard: plan.home[index],
            stolen: false,
            cached: false,
            wall_ms: 7,
            report,
        }
    }

    #[test]
    fn create_then_resume_replays_everything() {
        let path = tmp("roundtrip");
        let plan = tiny_plan();
        let journal = SweepJournal::create(&path, &plan).unwrap();
        journal.append_done(&fake_done(&plan, 0)).unwrap();
        journal.append_failed(2, plan.hashes[2], "boom").unwrap();
        assert_eq!(journal.appended(), 2);
        drop(journal);

        let (_, replay) = SweepJournal::resume(&path, &plan).unwrap();
        assert_eq!(replay.done.len(), 1);
        assert_eq!(replay.done[0].index, 0);
        assert_eq!(replay.done[0].config_hash, plan.hashes[0]);
        assert_eq!(replay.failed, vec![(2, plan.hashes[2], "boom".to_string())]);
        assert!(!replay.truncated);
        assert_eq!(replay.resolved(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_stays_truncated() {
        let path = tmp("torn");
        let plan = tiny_plan();
        let journal = SweepJournal::create(&path, &plan).unwrap();
        journal.append_done(&fake_done(&plan, 1)).unwrap();
        drop(journal);
        let clean_len = fs::metadata(&path).unwrap().len();
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"crc\":1,\"record\":{\"Done\":{\"ind")
            .unwrap();
        drop(file);

        let (_, replay) = SweepJournal::resume(&path, &plan).unwrap();
        assert_eq!(replay.done.len(), 1);
        assert!(replay.truncated);
        assert!(replay.dropped_bytes > 0);
        assert_eq!(fs::metadata(&path).unwrap().len(), clean_len);

        let (_, replay) = SweepJournal::resume(&path, &plan).unwrap();
        assert!(!replay.truncated, "second resume sees a clean file");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn duplicate_records_are_first_writer_wins() {
        let path = tmp("dups");
        let plan = tiny_plan();
        let journal = SweepJournal::create(&path, &plan).unwrap();
        let mut first = fake_done(&plan, 0);
        first.wall_ms = 1;
        let mut second = fake_done(&plan, 0);
        second.wall_ms = 99;
        journal.append_done(&first).unwrap();
        journal.append_done(&second).unwrap();
        // A Failed after a Done for the same cell is also a duplicate.
        journal
            .append_failed(0, plan.hashes[0], "late loser")
            .unwrap();
        drop(journal);

        let (_, replay) = SweepJournal::resume(&path, &plan).unwrap();
        assert_eq!(replay.done.len(), 1);
        assert_eq!(replay.done[0].wall_ms, 1, "first writer wins");
        assert!(replay.failed.is_empty());
        assert_eq!(replay.duplicates, 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn plan_mismatch_is_rejected() {
        let path = tmp("mismatch");
        let plan = tiny_plan();
        SweepJournal::create(&path, &plan).unwrap();
        let mut other_cells = tiny_spec().expand();
        other_cells.truncate(3);
        let other = Plan::new(&other_cells, 2);
        match SweepJournal::resume(&path, &other) {
            Err(JournalError::PlanMismatch { expected, found }) => {
                assert_eq!(expected, other.content_hash());
                assert_eq!(found, plan.content_hash());
            }
            other => panic!("expected PlanMismatch, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn foreign_config_hash_is_rejected() {
        let path = tmp("foreign");
        let plan = tiny_plan();
        let journal = SweepJournal::create(&path, &plan).unwrap();
        journal.append_failed(1, 0xDEAD_BEEF, "not ours").unwrap();
        drop(journal);
        match SweepJournal::resume(&path, &plan) {
            Err(JournalError::BadRecord { line, why }) => {
                assert_eq!(line, 2);
                assert!(why.contains("config_hash"), "why: {why}");
            }
            other => panic!("expected BadRecord, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_header_is_rejected() {
        let path = tmp("headerless");
        fs::write(&path, b"").unwrap();
        assert!(matches!(
            SweepJournal::resume(&path, &tiny_plan()),
            Err(JournalError::MissingHeader)
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn inspect_summarizes_without_a_plan() {
        let path = tmp("inspect");
        let plan = tiny_plan();
        let journal = SweepJournal::create(&path, &plan).unwrap();
        journal.append_done(&fake_done(&plan, 0)).unwrap();
        journal.append_done(&fake_done(&plan, 0)).unwrap();
        journal.append_failed(3, plan.hashes[3], "x").unwrap();
        drop(journal);
        let stats = SweepJournal::inspect(&path).unwrap();
        assert_eq!(stats.plan_hash, plan.content_hash());
        assert_eq!(stats.cells, plan.len());
        assert_eq!(stats.done, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.dropped_bytes, 0);
        let _ = fs::remove_file(&path);
    }
}
