//! Sharded sweep coordinator for the backfilling testbed.
//!
//! One `bfsimd` daemon memoizes and parallelizes a sweep on a single
//! machine; this crate fans a sweep out across *many* daemons ("shards")
//! and merges the results back into one report — the `bfsim sweep`
//! subcommand. See DESIGN.md §15 for the protocol and the exactly-once
//! argument.
//!
//! The pipeline:
//!
//! * [`plan`] — expand a [`bench::sweep::SweepSpec`] (or any cell list)
//!   into a deduplicated [`Plan`]: every unique cell, its canonical
//!   content hash, and its *home shard* (`hash % shards`). Assignment
//!   is a pure function of the canonical config JSON, so re-running the
//!   same sweep against the same fleet lands every cell on the shard
//!   that already memoized it (cache affinity), in every process.
//! * [`dispatch`] — per-shard worker pools with bounded in-flight
//!   windows (sized from the daemon's [`service::Capabilities`]
//!   handshake), work stealing from stragglers onto idle shards, and
//!   recovery from shard death by redistributing the dead shard's
//!   queue. Each cell is recorded exactly once, whichever shard answers
//!   first.
//! * [`journal`] — durable crash recovery: an fnv1a-checksummed JSONL
//!   journal of resolved cells, replayed by `bfsim sweep --resume` so a
//!   killed coordinator re-runs only the remainder. See DESIGN.md §18.
//! * [`aggregate`] — merge the shared-nothing shards' stats and metrics
//!   snapshots into one document, via [`obs::merge_snapshots`].
//!
//! [`bench::sweep::SweepSpec`]: bench_lib::sweep::SweepSpec

#![warn(missing_docs)]

pub mod aggregate;
pub mod dispatch;
pub mod journal;
pub mod plan;

pub use aggregate::{aggregate_metrics, aggregate_stats, parse_metrics_doc, SpanDoc};
pub use dispatch::{
    run_sweep, run_sweep_recoverable, CellDone, ShardSummary, SweepError, SweepOptions,
    SweepOutcome,
};
pub use journal::{JournalError, JournalStats, SweepJournal, SweepRecord, SweepReplay};
pub use plan::Plan;
