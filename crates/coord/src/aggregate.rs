//! Merging shared-nothing shard state into one report.
//!
//! Each `bfsimd` shard owns its own counters, cache, and metrics
//! registry; nothing is shared across processes. After a sweep the
//! coordinator pulls every reachable shard's [`ServiceStats`] and
//! canonical metrics JSON, sums the former field-wise, and merges the
//! latter with [`obs::merge_snapshots`] — counters and gauges add,
//! histograms add bucket-wise — then re-renders the aggregate in the
//! *same* canonical format a single daemon emits, so existing tooling
//! (`jq`, diffing, the metrics e2e tests) consumes fleet-wide documents
//! unchanged.

use obs::metrics::{render_snapshot, HistogramSnapshot, SnapshotValue, HISTOGRAM_BUCKETS};
use serde::{Deserialize, Serialize, Value};
use service::{ServiceStats, WireSpan};

/// One span source in serialized form — what a sweep report embeds so
/// `bfsim timeline` can rebuild the [`obs::SpanSource`] list offline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanDoc {
    /// Source display name (`coordinator`, a shard address, ...).
    pub name: String,
    /// That source's spans in wire form.
    pub spans: Vec<WireSpan>,
}

impl From<obs::SpanSource> for SpanDoc {
    fn from(src: obs::SpanSource) -> Self {
        SpanDoc {
            name: src.name,
            spans: src.spans.into_iter().map(Into::into).collect(),
        }
    }
}

impl From<SpanDoc> for obs::SpanSource {
    fn from(doc: SpanDoc) -> Self {
        obs::SpanSource {
            name: doc.name,
            spans: doc.spans.into_iter().map(Into::into).collect(),
        }
    }
}

fn as_u64(v: &Value) -> Result<u64, String> {
    match v {
        Value::U64(n) => Ok(*n),
        other => Err(format!("expected unsigned integer, got {}", other.kind())),
    }
}

fn as_i64(v: &Value) -> Result<i64, String> {
    match v {
        Value::I64(n) => Ok(*n),
        Value::U64(n) => i64::try_from(*n).map_err(|_| format!("gauge {n} overflows i64")),
        other => Err(format!("expected integer, got {}", other.kind())),
    }
}

/// The inverse of [`Histogram::bucket_upper_bound`]: which bucket index
/// a serialized `[upper_bound, count]` pair belongs to. Upper bounds
/// are `0`, `2^i - 1`, or `u64::MAX`, so this is exactly `bucket_of`.
///
/// [`Histogram::bucket_upper_bound`]: obs::metrics::Histogram::bucket_upper_bound
fn bucket_index(upper_bound: u64) -> usize {
    (64 - upper_bound.leading_zeros()) as usize
}

/// Parse one daemon's canonical metrics document (the `metrics` verb's
/// reply, rendered by [`obs::render_snapshot`]) back into snapshot
/// form, ready for [`obs::merge_snapshots`].
pub fn parse_metrics_doc(json: &str) -> Result<Vec<(String, SnapshotValue)>, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| format!("metrics document: {e}"))?;
    let section = |name: &str| -> Result<Vec<(String, Value)>, String> {
        match doc.field(name).map_err(|e| e.to_string())? {
            Value::Object(fields) => Ok(fields.clone()),
            other => Err(format!("section `{name}` is {}, not object", other.kind())),
        }
    };
    let mut snap: Vec<(String, SnapshotValue)> = Vec::new();
    for (name, v) in section("counters")? {
        snap.push((name, SnapshotValue::Counter(as_u64(&v)?)));
    }
    for (name, v) in section("gauges")? {
        snap.push((name, SnapshotValue::Gauge(as_i64(&v)?)));
    }
    for (name, v) in section("histograms")? {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        for pair in v
            .field("buckets")
            .and_then(Value::as_array)
            .map_err(|e| format!("histogram `{name}`: {e}"))?
        {
            let pair = pair
                .as_array()
                .map_err(|e| format!("histogram `{name}` bucket: {e}"))?;
            if pair.len() != 2 {
                return Err(format!("histogram `{name}` bucket is not a pair"));
            }
            let (ub, n) = (as_u64(&pair[0])?, as_u64(&pair[1])?);
            buckets[bucket_index(ub)] = n;
        }
        let count = as_u64(v.field("count").map_err(|e| e.to_string())?)?;
        let sum = as_u64(v.field("sum").map_err(|e| e.to_string())?)?;
        snap.push((
            name,
            SnapshotValue::Histogram(HistogramSnapshot {
                count,
                sum,
                buckets,
            }),
        ));
    }
    // merge_snapshots re-sorts; sort here too so a single parsed doc is
    // already in canonical (registry) order.
    snap.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(snap)
}

/// Merge shard metrics documents (plus any extra local snapshots, e.g.
/// the coordinator's own registry) into one canonical document.
pub fn aggregate_metrics(
    docs: &[String],
    extra: &[Vec<(String, SnapshotValue)>],
) -> Result<String, String> {
    let mut snaps: Vec<Vec<(String, SnapshotValue)>> = Vec::with_capacity(docs.len());
    for doc in docs {
        snaps.push(parse_metrics_doc(doc)?);
    }
    snaps.extend(extra.iter().cloned());
    Ok(render_snapshot(&obs::merge_snapshots(&snaps)))
}

/// Sum per-shard service stats into a fleet view: counters add,
/// `wall_ms_max` takes the max, `draining` is true if any shard drains.
pub fn aggregate_stats(stats: &[ServiceStats]) -> ServiceStats {
    let mut total = ServiceStats::default();
    for s in stats {
        total.submitted += s.submitted;
        total.completed += s.completed;
        total.failed += s.failed;
        total.rejected += s.rejected;
        total.shed += s.shed;
        total.worker_panics += s.worker_panics;
        total.cache_hits += s.cache_hits;
        total.cache_misses += s.cache_misses;
        total.cache_entries += s.cache_entries;
        total.cache_evictions += s.cache_evictions;
        total.queue_depth += s.queue_depth;
        total.in_flight += s.in_flight;
        total.draining |= s.draining;
        total.wall_ms_total += s.wall_ms_total;
        total.wall_ms_max = total.wall_ms_max.max(s.wall_ms_max);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Registry;

    #[test]
    fn parse_round_trips_a_registry_document() {
        let r = Registry::new();
        r.counter("service.submitted").add(12);
        r.gauge("service.pool.queue_depth").set(-2);
        r.histogram("service.wall_ms").record(5);
        r.histogram("service.wall_ms").record(900);
        let doc = r.snapshot_json();
        let parsed = parse_metrics_doc(&doc).unwrap();
        assert_eq!(render_snapshot(&parsed), doc, "parse must invert render");
    }

    #[test]
    fn aggregate_metrics_doubles_a_doc_merged_with_itself() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.histogram("h").record(7);
        let doc = r.snapshot_json();
        let merged = aggregate_metrics(&[doc.clone(), doc], &[]).unwrap();
        let parsed = parse_metrics_doc(&merged).unwrap();
        assert_eq!(parsed[0], ("c".into(), SnapshotValue::Counter(6)));
        match &parsed[1].1 {
            SnapshotValue::Histogram(h) => assert_eq!((h.count, h.sum), (2, 14)),
            other => panic!("h aggregated to {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_metrics_doc("not json").is_err());
        assert!(parse_metrics_doc("{\"counters\":{}}").is_err()); // missing sections
        assert!(
            parse_metrics_doc("{\"counters\":{\"c\":-1},\"gauges\":{},\"histograms\":{}}").is_err()
        );
    }

    #[test]
    fn stats_sum_field_wise() {
        let a = ServiceStats {
            submitted: 4,
            completed: 3,
            cache_hits: 1,
            wall_ms_max: 70,
            ..ServiceStats::default()
        };
        let b = ServiceStats {
            submitted: 6,
            completed: 6,
            draining: true,
            wall_ms_max: 20,
            ..ServiceStats::default()
        };
        let total = aggregate_stats(&[a, b]);
        assert_eq!(total.submitted, 10);
        assert_eq!(total.completed, 9);
        assert_eq!(total.cache_hits, 1);
        assert_eq!(total.wall_ms_max, 70, "max, not sum");
        assert!(total.draining);
    }
}
