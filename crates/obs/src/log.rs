//! Structured, leveled, targeted logging.
//!
//! Records carry a [`Level`], a target (defaulting to the emitting
//! module's path), and a formatted message. A process-global logger is
//! installed once via [`init`] / [`init_from_env`]; the `error!`,
//! `warn!`, `info!`, `debug!`, and `trace!` macros check a single
//! relaxed atomic load before formatting anything, so disabled levels are
//! near-free on the hot path and pool workers can log without
//! coordination beyond the sink mutex.
//!
//! # Filter grammar
//!
//! The filter string (flag `--log-level` or env `BFSIM_LOG`) is a
//! comma-separated list of directives:
//!
//! ```text
//! directive := level | target '=' level
//! level     := "off" | "error" | "warn" | "info" | "debug" | "trace"
//! ```
//!
//! A bare level sets the default; `target=level` overrides it for any
//! record whose target starts with `target` (longest prefix wins).
//! Examples: `info`, `warn,service=debug`, `off,sched=trace`.
//!
//! # Sinks
//!
//! Text (default): `[LEVEL target] message` on stderr. JSON
//! (`--log-json`): one object per line,
//! `{"seq":N,"level":"info","target":"...","msg":"..."}` — `seq` is a
//! process-monotone counter, deterministic where a wall clock would not
//! be. Opting into [`LogConfig::elapsed`] (flag `--log-elapsed`) adds a
//! monotonic `elapsed_ms` field (text sink: a `+Nms` tag) for latency
//! eyeballing; it stays off by default so golden log output is
//! byte-stable.

use crate::json::push_str_literal;
use std::fmt;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Log verbosity, ordered: `Error < Warn < Info < Debug < Trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The operation failed; the process may be about to exit.
    Error = 1,
    /// Something surprising that the process can absorb.
    Warn = 2,
    /// Coarse progress: one line per request / run / phase.
    Info = 3,
    /// Per-operation detail for debugging.
    Debug = 4,
    /// Event-level firehose (per scheduler decision).
    Trace = 5,
}

impl Level {
    /// Lower-case name, as used in filters and the JSON sink.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Upper-case name, as used by the text sink.
    pub fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Parse a level name; `None` maps "off" and unknown names apart.
    pub fn parse(s: &str) -> Result<Option<Level>, String> {
        Ok(Some(match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => return Ok(None),
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "info" => Level::Info,
            "debug" => Level::Debug,
            "trace" => Level::Trace,
            other => return Err(format!("unknown log level `{other}`")),
        }))
    }
}

/// One `target=level` override (empty target = the default directive).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Directive {
    target: String,
    level: Option<Level>,
}

/// A parsed filter string: default level plus per-target overrides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    default: Option<Level>,
    /// Sorted by descending target length so the first prefix match is
    /// the longest (most specific) one.
    overrides: Vec<Directive>,
}

impl Filter {
    /// Everything off.
    pub fn off() -> Self {
        Filter {
            default: None,
            overrides: Vec::new(),
        }
    }

    /// A uniform level with no per-target overrides.
    pub fn uniform(level: Level) -> Self {
        Filter {
            default: Some(level),
            overrides: Vec::new(),
        }
    }

    /// Parse the grammar documented at the [module level](self).
    pub fn parse(spec: &str) -> Result<Filter, String> {
        let mut filter = Filter::off();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                None => filter.default = Level::parse(part)?,
                Some((target, level)) => {
                    let target = target.trim();
                    if target.is_empty() {
                        return Err(format!("empty target in directive `{part}`"));
                    }
                    filter.overrides.push(Directive {
                        target: target.to_string(),
                        level: Level::parse(level)?,
                    });
                }
            }
        }
        filter
            .overrides
            .sort_by_key(|d| std::cmp::Reverse(d.target.len()));
        Ok(filter)
    }

    /// The effective level for `target` (longest matching prefix, else
    /// the default).
    fn level_for(&self, target: &str) -> Option<Level> {
        for d in &self.overrides {
            if target.starts_with(d.target.as_str()) {
                return d.level;
            }
        }
        self.default
    }

    /// Would a record at `level` under `target` be emitted?
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        self.level_for(target).is_some_and(|max| level <= max)
    }

    /// The most verbose level any directive allows — the value of the
    /// global fast gate.
    fn max_level(&self) -> u8 {
        self.overrides
            .iter()
            .map(|d| d.level.map_or(0, |l| l as u8))
            .chain([self.default.map_or(0, |l| l as u8)])
            .max()
            .unwrap_or(0)
    }
}

/// Where formatted records go.
pub enum Sink {
    /// Standard error (the default; keeps stdout clean for data).
    Stderr,
    /// Any writer — a file, a test buffer.
    Writer(Box<dyn Write + Send>),
}

impl fmt::Debug for Sink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sink::Stderr => f.write_str("Sink::Stderr"),
            Sink::Writer(_) => f.write_str("Sink::Writer(..)"),
        }
    }
}

/// Full logger configuration, consumed by [`init`].
#[derive(Debug)]
pub struct LogConfig {
    /// Which records pass.
    pub filter: Filter,
    /// Emit JSON lines instead of text.
    pub json: bool,
    /// Destination.
    pub sink: Sink,
    /// Stamp each record with monotonic milliseconds since logger init
    /// (`elapsed_ms` in JSON, `+Nms` in text). Off by default: the
    /// deterministic `seq` counter alone keeps golden log tests
    /// byte-stable.
    pub elapsed: bool,
}

impl LogConfig {
    /// Text records through `filter` to stderr.
    pub fn new(filter: Filter) -> Self {
        LogConfig {
            filter,
            json: false,
            sink: Sink::Stderr,
            elapsed: false,
        }
    }
}

struct Logger {
    filter: Filter,
    json: bool,
    sink: Mutex<Sink>,
    seq: AtomicU64,
    /// `Some(init time)` when records carry `elapsed_ms`.
    elapsed_since: Option<std::time::Instant>,
}

static LOGGER: OnceLock<Logger> = OnceLock::new();
/// Fast gate: the most verbose enabled level (0 = everything off). One
/// relaxed load decides whether a macro call formats anything at all.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Install the global logger. The first call wins; later calls return
/// `Err` with the rejected config (tests and library callers can treat
/// that as success — a logger is installed either way).
pub fn init(config: LogConfig) -> Result<(), LogConfig> {
    let max = config.filter.max_level();
    let logger = Logger {
        filter: config.filter,
        json: config.json,
        sink: Mutex::new(config.sink),
        seq: AtomicU64::new(0),
        elapsed_since: config.elapsed.then(std::time::Instant::now),
    };
    match LOGGER.set(logger) {
        Ok(()) => {
            MAX_LEVEL.store(max, Ordering::Release);
            Ok(())
        }
        Err(rejected) => Err(LogConfig {
            filter: rejected.filter,
            json: rejected.json,
            sink: rejected.sink.into_inner().unwrap_or(Sink::Stderr),
            elapsed: rejected.elapsed_since.is_some(),
        }),
    }
}

/// Install from the `BFSIM_LOG` environment variable (text, stderr).
/// Unset or empty means off; an unparsable spec falls back to `warn` so
/// a typo never silences errors. Returns whether this call installed it.
pub fn init_from_env() -> bool {
    let filter = match std::env::var("BFSIM_LOG") {
        Ok(spec) if !spec.trim().is_empty() => {
            Filter::parse(&spec).unwrap_or_else(|_| Filter::uniform(Level::Warn))
        }
        _ => Filter::off(),
    };
    init(LogConfig::new(filter)).is_ok()
}

/// Cheap pre-check used by the macros: is a record at `level` under
/// `target` worth formatting?
#[inline]
pub fn enabled(level: Level, target: &str) -> bool {
    if (level as u8) > MAX_LEVEL.load(Ordering::Relaxed) {
        return false;
    }
    LOGGER
        .get()
        .is_some_and(|l| l.filter.enabled(level, target))
}

/// Emit one record. Callers should gate on [`enabled`] first (the macros
/// do); calling it unconditionally is correct but formats eagerly.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    let Some(logger) = LOGGER.get() else { return };
    if !logger.filter.enabled(level, target) {
        return;
    }
    let seq = logger.seq.fetch_add(1, Ordering::Relaxed);
    let elapsed_ms = logger
        .elapsed_since
        .map(|since| since.elapsed().as_millis() as u64);
    let line = if logger.json {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\":");
        out.push_str(&seq.to_string());
        if let Some(ms) = elapsed_ms {
            out.push_str(",\"elapsed_ms\":");
            out.push_str(&ms.to_string());
        }
        out.push_str(",\"level\":");
        push_str_literal(&mut out, level.as_str());
        out.push_str(",\"target\":");
        push_str_literal(&mut out, target);
        out.push_str(",\"msg\":");
        push_str_literal(&mut out, &args.to_string());
        out.push_str("}\n");
        out
    } else {
        match elapsed_ms {
            Some(ms) => format!("[{} +{}ms {}] {}\n", level.tag(), ms, target, args),
            None => format!("[{} {}] {}\n", level.tag(), target, args),
        }
    };
    let mut sink = logger.sink.lock().unwrap_or_else(|e| e.into_inner());
    let _ = match &mut *sink {
        Sink::Stderr => io::stderr().write_all(line.as_bytes()),
        Sink::Writer(w) => w.write_all(line.as_bytes()).and_then(|()| w.flush()),
    };
}

/// Log at an explicit [`Level`]; prefer the leveled shorthands.
#[macro_export]
macro_rules! log_at {
    (target: $target:expr, $lvl:expr, $($arg:tt)+) => {{
        let lvl = $lvl;
        let target = $target;
        if $crate::log::enabled(lvl, target) {
            $crate::log::log(lvl, target, format_args!($($arg)+));
        }
    }};
    ($lvl:expr, $($arg:tt)+) => {
        $crate::log_at!(target: module_path!(), $lvl, $($arg)+)
    };
}

/// Log at [`Level::Error`].
#[macro_export]
macro_rules! error {
    (target: $t:expr, $($a:tt)+) => { $crate::log_at!(target: $t, $crate::log::Level::Error, $($a)+) };
    ($($a:tt)+) => { $crate::log_at!($crate::log::Level::Error, $($a)+) };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    (target: $t:expr, $($a:tt)+) => { $crate::log_at!(target: $t, $crate::log::Level::Warn, $($a)+) };
    ($($a:tt)+) => { $crate::log_at!($crate::log::Level::Warn, $($a)+) };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! info {
    (target: $t:expr, $($a:tt)+) => { $crate::log_at!(target: $t, $crate::log::Level::Info, $($a)+) };
    ($($a:tt)+) => { $crate::log_at!($crate::log::Level::Info, $($a)+) };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    (target: $t:expr, $($a:tt)+) => { $crate::log_at!(target: $t, $crate::log::Level::Debug, $($a)+) };
    ($($a:tt)+) => { $crate::log_at!($crate::log::Level::Debug, $($a)+) };
}

/// Log at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    (target: $t:expr, $($a:tt)+) => { $crate::log_at!(target: $t, $crate::log::Level::Trace, $($a)+) };
    ($($a:tt)+) => { $crate::log_at!($crate::log::Level::Trace, $($a)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("TRACE").unwrap(), Some(Level::Trace));
        assert_eq!(Level::parse("off").unwrap(), None);
        assert!(Level::parse("loud").is_err());
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn filter_grammar() {
        let f = Filter::parse("warn,service=debug,service::pool=off,sched=trace").unwrap();
        assert!(f.enabled(Level::Warn, "bfsim"));
        assert!(!f.enabled(Level::Info, "bfsim"));
        assert!(f.enabled(Level::Debug, "service::server"));
        // Longest prefix wins: the pool is silenced below its parent.
        assert!(!f.enabled(Level::Error, "service::pool"));
        assert!(f.enabled(Level::Trace, "sched::easy"));
        assert_eq!(f.max_level(), Level::Trace as u8);
    }

    #[test]
    fn filter_default_only_and_off() {
        let f = Filter::parse("info").unwrap();
        assert!(f.enabled(Level::Info, "anything"));
        assert!(!f.enabled(Level::Debug, "anything"));
        let off = Filter::parse("off").unwrap();
        assert!(!off.enabled(Level::Error, "anything"));
        assert_eq!(off.max_level(), 0);
    }

    #[test]
    fn filter_rejects_bad_specs() {
        assert!(Filter::parse("chatty").is_err());
        assert!(Filter::parse("=info").is_err());
        assert!(Filter::parse("a=silly").is_err());
    }

    #[test]
    fn disabled_without_init_is_cheap_and_safe() {
        // The global logger may or may not be installed by another test;
        // either way a disabled-level check must not panic.
        let _ = enabled(Level::Trace, "nope");
        log(Level::Trace, "nope", format_args!("dropped"));
    }
}
