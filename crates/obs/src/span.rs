//! Distributed span tracing and per-phase self-profiling.
//!
//! A **span** is one timed operation: it carries a `trace_id` (the cell
//! it belongs to — by convention the cell's canonical content hash), its
//! own `span_id`, the `span_id` of its parent (0 for a root), a start
//! timestamp in microseconds on the process-local monotonic clock, and a
//! duration. Spans from the coordinator and every shard merge into one
//! timeline per cell: the coordinator opens the root (`span_id ==
//! trace_id`, so the wire only needs to carry `{trace_id, parent_span}`),
//! each submit attempt is a child of the root, and everything a shard
//! records for that attempt parents onto the attempt's span id. Dead
//! shards lose their own spans but never orphan the tree — the
//! coordinator-side root and attempt spans always exist.
//!
//! # Cost model
//!
//! Recording is off by default. Every entry point checks one relaxed
//! atomic load and returns immediately when disabled, so the instrumented
//! hot paths cost a branch. When enabled, finished spans go into a small
//! per-thread buffer (no locking) that flushes into a bounded global
//! vector; past the global cap spans are counted in [`dropped`] and
//! discarded rather than growing without bound. Nothing here feeds back
//! into scheduling decisions: tracing is **decision-neutral** by
//! construction, and the CI parity gate holds schedule fingerprints
//! byte-identical with tracing on and off.
//!
//! # Phases
//!
//! [`PhaseAcc`] is the in-simulation half: a plain (non-atomic)
//! per-phase histogram of nanosecond durations for the driver's event
//! phases (event pop, per-class dispatch) and the schedulers' inner
//! passes (queue ops, compress, backfill). The **top-level** phases
//! record every occurrence — their sums are exact, which is what lets a
//! run account for its own wall time — while the nested phases are
//! timed one occurrence in [`NESTED_SAMPLE`] (they are attribution
//! inside the top-level timings, so sampling them costs accuracy
//! nothing the histograms care about). Only every [`SPAN_SAMPLE`]-th
//! occurrence also emits a span, keeping span volume bounded on
//! million-event runs. Phase timers read the TSC-backed [`clock_ticks`]
//! fast clock, not `Instant` — see the cost note on that function.

use crate::metrics::{LocalHistogram, Registry};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Per-thread buffer size: flushing into the global vector happens at
/// this many finished spans (and at explicit [`flush_thread`] calls).
pub const THREAD_BUF: usize = 256;

/// Global buffer cap: spans past this are dropped (and counted), so a
/// runaway producer cannot exhaust memory.
pub const GLOBAL_CAP: usize = 65_536;

/// One in `SPAN_SAMPLE` phase occurrences also emits a span (histograms
/// still see every occurrence).
pub const SPAN_SAMPLE: u64 = 4096;

/// One in `NESTED_SAMPLE` *nested* phase occurrences is actually timed
/// (see [`PhaseAcc::tick`]). Top-level phases are never sampled — their
/// sums must tile the wall time — but the nested phases are pure
/// attribution, so sampling them keeps the per-event overhead down
/// without losing the shape of their distributions.
pub const NESTED_SAMPLE: u64 = 8;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Turn span recording on or off process-wide. Off is the default; when
/// off every recording entry point is one relaxed load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Is span recording on?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-local monotonic anchor: all span timestamps are
/// microseconds since the first call in this process. Timestamps are
/// therefore comparable *within* a process but not across processes —
/// the timeline renderer normalizes per source.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Microseconds since the process anchor.
pub fn now_micros() -> u64 {
    anchor().elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------
// Fast phase clock
// ---------------------------------------------------------------------
//
// `Instant::now` goes through a vDSO call and costs ~25-35 ns; at two
// reads per simulated event that alone is ~20% of the event loop. The
// phase timers therefore read the CPU timestamp counter directly on
// x86_64 (~7 ns, invariant-rate on every CPU this project targets) and
// convert tick deltas to nanoseconds with a once-calibrated factor.
// Other architectures fall back to `Instant`, which is merely slower,
// not wrong.

/// An opaque reading of the fast phase clock. Only *differences* between
/// two readings mean anything, and only after [`ticks_to_ns`].
#[inline]
pub fn clock_ticks() -> u64 {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        anchor().elapsed().as_nanos() as u64
    }
}

/// Convert a [`clock_ticks`] delta to nanoseconds.
#[inline]
pub fn ticks_to_ns(dt: u64) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        (dt as f64 * ns_per_tick()) as u64
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        dt
    }
}

/// Force the one-time TSC calibration now, so its ~2 ms measurement
/// window does not land inside the first timed region. Safe to call any
/// number of times; a no-op on non-x86_64.
pub fn calibrate_clock() {
    #[cfg(target_arch = "x86_64")]
    ns_per_tick();
}

#[cfg(target_arch = "x86_64")]
fn ns_per_tick() -> f64 {
    static NS_PER_TICK: OnceLock<f64> = OnceLock::new();
    *NS_PER_TICK.get_or_init(|| {
        // Measure the TSC against the OS monotonic clock across a short
        // sleep. The sleep's actual length is irrelevant — both clocks
        // span the same interval — it only has to be long enough that
        // syscall jitter at the endpoints is noise.
        let (t0, c0) = (Instant::now(), clock_ticks());
        std::thread::sleep(std::time::Duration::from_millis(2));
        let (dt, dc) = (t0.elapsed(), clock_ticks().saturating_sub(c0));
        if dc == 0 {
            return 1.0; // a TSC that does not advance: treat ticks as ns
        }
        dt.as_nanos() as f64 / dc as f64
    })
}

/// A fresh process-unique span id. The process id seeds the high bits so
/// ids minted by the coordinator and its shards stay distinct when their
/// spans merge (roots use the trace id itself and are exempt).
pub fn next_span_id() -> u64 {
    let seq = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    ((std::process::id() as u64) << 40) ^ seq
}

/// The propagated identity of a live span: enough to parent children,
/// locally or across the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The trace (cell) this span belongs to.
    pub trace_id: u64,
    /// The span itself — children use this as their `parent_id`.
    pub span_id: u64,
}

/// One finished span, as buffered and drained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace (cell) the span belongs to.
    pub trace_id: u64,
    /// This span's id; unique within the merged timeline.
    pub span_id: u64,
    /// Parent span id; 0 marks a root.
    pub parent_id: u64,
    /// Operation name (`cell`, `attempt`, `rpc.submit`, `run`, ...).
    pub name: String,
    /// Start, µs on the recording process's monotonic clock.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
}

/// A live span; records itself into the thread buffer when dropped (or
/// explicitly [`Span::end`]ed). When recording is disabled construction
/// returns an inert guard that does nothing.
#[derive(Debug)]
pub struct Span {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    ctx: SpanContext,
    parent_id: u64,
    name: &'static str,
    start_us: u64,
}

impl Span {
    /// Open a root span for `trace_id`. By convention the root's span id
    /// *is* the trace id, so remote children can parent onto it knowing
    /// only the trace context.
    pub fn root(trace_id: u64, name: &'static str) -> Span {
        Self::open(trace_id, trace_id, 0, name)
    }

    /// Open a child of `parent`.
    pub fn child(parent: SpanContext, name: &'static str) -> Span {
        Self::open(parent.trace_id, next_span_id(), parent.span_id, name)
    }

    fn open(trace_id: u64, span_id: u64, parent_id: u64, name: &'static str) -> Span {
        if !enabled() {
            return Span { live: None };
        }
        Span {
            live: Some(LiveSpan {
                ctx: SpanContext { trace_id, span_id },
                parent_id,
                name,
                start_us: now_micros(),
            }),
        }
    }

    /// The span's propagation context; `None` when recording is off (an
    /// inert guard has no identity worth propagating).
    pub fn ctx(&self) -> Option<SpanContext> {
        self.live.as_ref().map(|l| l.ctx)
    }

    /// Finish the span now (drop does the same).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            record_raw(SpanRecord {
                trace_id: live.ctx.trace_id,
                span_id: live.ctx.span_id,
                parent_id: live.parent_id,
                name: live.name.to_string(),
                start_us: live.start_us,
                dur_us: now_micros().saturating_sub(live.start_us),
            });
        }
    }
}

/// Thread-local buffer wrapper whose drop flushes, so short-lived
/// threads (pool workers, submitters) never strand finished spans.
struct LocalBuf(RefCell<Vec<SpanRecord>>);

impl Drop for LocalBuf {
    fn drop(&mut self) {
        flush_vec(self.0.get_mut());
    }
}

thread_local! {
    static LOCAL: LocalBuf = const { LocalBuf(RefCell::new(Vec::new())) };
}

fn flush_vec(buf: &mut Vec<SpanRecord>) {
    if buf.is_empty() {
        return;
    }
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let room = GLOBAL_CAP.saturating_sub(sink.len());
    if buf.len() > room {
        DROPPED.fetch_add((buf.len() - room) as u64, Ordering::Relaxed);
        buf.truncate(room);
    }
    sink.append(buf);
}

/// Buffer one already-finished span (the building block for synthesized
/// spans, e.g. the coordinator's per-cell roots). No-op when disabled.
pub fn record_raw(rec: SpanRecord) {
    if !enabled() {
        return;
    }
    LOCAL.with(|local| {
        let mut buf = local.0.borrow_mut();
        buf.push(rec);
        if buf.len() >= THREAD_BUF {
            flush_vec(&mut buf);
        }
    });
}

/// Flush this thread's buffer into the global sink. Call at natural
/// boundaries (request served, cell resolved) so [`drain`] observes
/// everything; thread exit flushes automatically.
pub fn flush_thread() {
    LOCAL.with(|local| flush_vec(&mut local.0.borrow_mut()));
}

/// Take every globally buffered span (flushing the calling thread
/// first). Spans still sitting in *other* live threads' buffers are not
/// included — flush at task boundaries to avoid that.
pub fn drain() -> Vec<SpanRecord> {
    flush_thread();
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut *sink)
}

/// Spans discarded because the global buffer was full.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Forest validation
// ---------------------------------------------------------------------

/// What [`validate_forest`] found in a span set that passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestSummary {
    /// Distinct trace ids.
    pub traces: usize,
    /// Total spans.
    pub spans: usize,
}

/// Check that `spans` form exactly one rooted tree per trace: every
/// trace id has exactly one root (`parent_id == 0`) and every non-root
/// span's parent exists *within the same trace*. Duplicate span ids
/// within a trace are also rejected (they would render as ambiguous
/// parents).
pub fn validate_forest(spans: &[SpanRecord]) -> Result<ForestSummary, String> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut roots: BTreeMap<u64, usize> = BTreeMap::new();
    let mut ids: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for s in spans {
        if !ids.entry(s.trace_id).or_default().insert(s.span_id) {
            return Err(format!(
                "trace {:#018x}: duplicate span id {:#018x} (`{}`)",
                s.trace_id, s.span_id, s.name
            ));
        }
        if s.parent_id == 0 {
            *roots.entry(s.trace_id).or_insert(0) += 1;
        } else {
            roots.entry(s.trace_id).or_insert(0);
        }
    }
    for (trace, n) in &roots {
        match n {
            1 => {}
            0 => return Err(format!("trace {trace:#018x}: no root span")),
            n => return Err(format!("trace {trace:#018x}: {n} root spans")),
        }
    }
    for s in spans {
        if s.parent_id != 0 && !ids[&s.trace_id].contains(&s.parent_id) {
            return Err(format!(
                "trace {:#018x}: span {:#018x} (`{}`) has orphan parent {:#018x}",
                s.trace_id, s.span_id, s.name, s.parent_id
            ));
        }
    }
    Ok(ForestSummary {
        traces: roots.len(),
        spans: spans.len(),
    })
}

// ---------------------------------------------------------------------
// Chrome trace-event rendering
// ---------------------------------------------------------------------

/// One process's worth of spans for [`render_chrome_trace`] — the
/// coordinator and each shard are separate sources because their
/// monotonic clocks share no epoch.
#[derive(Debug, Clone)]
pub struct SpanSource {
    /// Display name (`coordinator`, a shard address, ...).
    pub name: String,
    /// The spans that source drained.
    pub spans: Vec<SpanRecord>,
}

/// Render sources as Chrome trace-event JSON (`chrome://tracing` /
/// Perfetto loadable). Each source becomes one `pid` (timestamps are
/// re-based to that source's earliest span, since monotonic clocks do
/// not align across processes) and each trace id becomes one `tid`
/// within it, so a cell reads as one row per process. Span identity
/// rides along in `args` for tooling.
pub fn render_chrome_trace(sources: &[SpanSource]) -> String {
    use crate::json::push_str_literal;
    use std::collections::BTreeMap;
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |out: &mut String, piece: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(piece);
    };
    for (pid, source) in sources.iter().enumerate() {
        let mut meta = String::new();
        meta.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
        meta.push_str(&pid.to_string());
        meta.push_str(",\"tid\":0,\"args\":{\"name\":");
        push_str_literal(&mut meta, &source.name);
        meta.push_str("}}");
        emit(&mut out, &meta);

        let base = source.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let mut tids: BTreeMap<u64, usize> = BTreeMap::new();
        for s in &source.spans {
            let next = tids.len();
            let tid = *tids.entry(s.trace_id).or_insert(next);
            let mut ev = String::with_capacity(160);
            ev.push_str("{\"name\":");
            push_str_literal(&mut ev, &s.name);
            ev.push_str(",\"cat\":\"span\",\"ph\":\"X\",\"ts\":");
            ev.push_str(&(s.start_us - base).to_string());
            ev.push_str(",\"dur\":");
            ev.push_str(&s.dur_us.to_string());
            ev.push_str(",\"pid\":");
            ev.push_str(&pid.to_string());
            ev.push_str(",\"tid\":");
            ev.push_str(&tid.to_string());
            ev.push_str(",\"args\":{\"trace\":");
            push_str_literal(&mut ev, &format!("{:#018x}", s.trace_id));
            ev.push_str(",\"span\":");
            push_str_literal(&mut ev, &format!("{:#018x}", s.span_id));
            ev.push_str(",\"parent\":");
            push_str_literal(&mut ev, &format!("{:#018x}", s.parent_id));
            ev.push_str("}}");
            emit(&mut out, &ev);
        }
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------
// Per-phase self-profiling
// ---------------------------------------------------------------------

/// The simulator's instrumented phases. The first four are the driver's
/// **top-level** phases — between them they tile the whole engine loop,
/// so their sums account for a run's wall time. The rest are nested
/// attribution inside the dispatch phases (a backfill pass runs *inside*
/// an arrival) and are excluded from [`PhaseAcc::top_level_sum_ns`] to
/// avoid double counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Popping the next event off the engine queue.
    EventPop = 0,
    /// Handling one arrival event (scheduler `on_arrival` + apply).
    Arrival = 1,
    /// Handling one completion event.
    Completion = 2,
    /// Handling one wake event.
    Wake = 3,
    /// Scheduler-internal queue insert/remove work.
    QueueOps = 4,
    /// Conservative-style reservation compression.
    Compress = 5,
    /// A backfill scan over the queue.
    Backfill = 6,
}

/// Number of phases tracked by a [`PhaseAcc`].
pub const PHASE_COUNT: usize = 7;

/// Every phase, in index order.
pub const ALL_PHASES: [Phase; PHASE_COUNT] = [
    Phase::EventPop,
    Phase::Arrival,
    Phase::Completion,
    Phase::Wake,
    Phase::QueueOps,
    Phase::Compress,
    Phase::Backfill,
];

impl Phase {
    /// Short lower-case name (also the span name for sampled spans).
    pub fn name(self) -> &'static str {
        match self {
            Phase::EventPop => "event_pop",
            Phase::Arrival => "arrival",
            Phase::Completion => "completion",
            Phase::Wake => "wake",
            Phase::QueueOps => "queue_ops",
            Phase::Compress => "compress",
            Phase::Backfill => "backfill",
        }
    }

    /// The metrics-registry histogram this phase flushes into
    /// (nanosecond samples).
    pub fn metric(self) -> &'static str {
        match self {
            Phase::EventPop => "sim.phase.event_pop_ns",
            Phase::Arrival => "sim.phase.arrival_ns",
            Phase::Completion => "sim.phase.completion_ns",
            Phase::Wake => "sim.phase.wake_ns",
            Phase::QueueOps => "sim.phase.queue_ops_ns",
            Phase::Compress => "sim.phase.compress_ns",
            Phase::Backfill => "sim.phase.backfill_ns",
        }
    }

    /// True for the mutually exclusive driver phases whose sums tile the
    /// engine loop's wall time.
    pub fn top_level(self) -> bool {
        matches!(
            self,
            Phase::EventPop | Phase::Arrival | Phase::Completion | Phase::Wake
        )
    }
}

/// Accumulates per-phase nanosecond durations for one simulation run.
/// Plain fields, no atomics: a run is single-threaded, and the
/// accumulator is shared with the schedulers the same way the decision
/// recorder is (an `Rc<RefCell<_>>`).
#[derive(Debug)]
pub struct PhaseAcc {
    hist: [LocalHistogram; PHASE_COUNT],
    occurrences: [u64; PHASE_COUNT],
    /// Occurrence counters for [`PhaseAcc::tick`]'s nested-phase
    /// sampling (counts every occurrence, timed or not).
    ticks: [u64; PHASE_COUNT],
    /// Parent for sampled phase spans (the run's span), when tracing.
    ctx: Option<SpanContext>,
}

impl Default for PhaseAcc {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseAcc {
    /// An empty accumulator.
    pub fn new() -> Self {
        PhaseAcc {
            hist: std::array::from_fn(|_| LocalHistogram::new()),
            occurrences: [0; PHASE_COUNT],
            ticks: [0; PHASE_COUNT],
            ctx: None,
        }
    }

    /// Parent sampled phase spans onto `ctx` (normally the run span).
    pub fn set_ctx(&mut self, ctx: SpanContext) {
        self.ctx = Some(ctx);
    }

    /// Record one phase occurrence of `ns` nanoseconds. Histograms see
    /// every occurrence (exact sums); every [`SPAN_SAMPLE`]-th
    /// occurrence also emits a span when tracing is on and a context is
    /// set.
    #[inline]
    pub fn record(&mut self, phase: Phase, ns: u64) {
        let i = phase as usize;
        self.hist[i].record(ns);
        self.occurrences[i] += 1;
        if self.occurrences[i].is_multiple_of(SPAN_SAMPLE) {
            if let (Some(ctx), true) = (self.ctx, enabled()) {
                let dur_us = ns / 1000;
                record_raw(SpanRecord {
                    trace_id: ctx.trace_id,
                    span_id: next_span_id(),
                    parent_id: ctx.span_id,
                    name: phase.name().to_string(),
                    start_us: now_micros().saturating_sub(dur_us),
                    dur_us,
                });
            }
        }
    }

    /// Sampling decision for a **nested** phase occurrence: returns
    /// `true` for one in [`NESTED_SAMPLE`] calls per phase, meaning
    /// "time this one". Callers skip the clock reads entirely on the
    /// other occurrences, so a nested phase's histogram holds an
    /// unbiased 1-in-N sample of its durations (multiply its sum by
    /// [`NESTED_SAMPLE`] to estimate total time). Top-level phases must
    /// not be sampled — [`PhaseAcc::top_level_sum_ns`] relies on their
    /// sums being exact.
    #[inline]
    pub fn tick(&mut self, phase: Phase) -> bool {
        debug_assert!(!phase.top_level(), "top-level phases are never sampled");
        let i = phase as usize;
        let n = self.ticks[i];
        self.ticks[i] = n + 1;
        n.is_multiple_of(NESTED_SAMPLE)
    }

    /// Exact nanosecond sum over the **top-level** phases — the
    /// self-accounted share of the run's wall time.
    pub fn top_level_sum_ns(&self) -> u64 {
        ALL_PHASES
            .iter()
            .filter(|p| p.top_level())
            .map(|&p| self.hist[p as usize].sum())
            .sum()
    }

    /// One phase's frozen histogram (empty phases included).
    pub fn histogram(&self, phase: Phase) -> &LocalHistogram {
        &self.hist[phase as usize]
    }

    /// Absorb every non-empty phase histogram into `registry` under the
    /// `sim.phase.*` names.
    pub fn flush_into(&self, registry: &Registry) {
        for &phase in &ALL_PHASES {
            let h = &self.hist[phase as usize];
            if h.count() > 0 {
                registry.histogram(phase.metric()).absorb(&h.snapshot());
            }
        }
    }
}

/// A [`PhaseAcc`] shared between the driver and the schedulers, mirroring
/// [`SharedRecorder`](crate::trace::SharedRecorder).
pub type SharedPhases = std::rc::Rc<RefCell<PhaseAcc>>;

/// Open a sampled nested-phase timing: returns a fast-clock reading iff
/// an accumulator is attached *and* this occurrence won the
/// 1-in-[`NESTED_SAMPLE`] draw (losing occurrences cost one counter
/// bump, no clock read). Close with [`finish_nested`].
#[inline]
pub fn start_nested(phases: &Option<SharedPhases>, phase: Phase) -> Option<u64> {
    let p = phases.as_ref()?;
    p.borrow_mut().tick(phase).then(clock_ticks)
}

/// Close a timing opened by [`start_nested`], recording the elapsed
/// nanoseconds under `phase`.
#[inline]
pub fn finish_nested(phases: &Option<SharedPhases>, phase: Phase, t0: Option<u64>) {
    if let (Some(t0), Some(p)) = (t0, phases) {
        p.borrow_mut()
            .record(phase, ticks_to_ns(clock_ticks().saturating_sub(t0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize span tests: they share the process-global sink/gate.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing_and_have_no_ctx() {
        let _g = lock();
        set_enabled(false);
        drain();
        let span = Span::root(7, "cell");
        assert!(span.ctx().is_none());
        drop(span);
        assert!(drain().is_empty());
    }

    #[test]
    fn root_and_child_form_a_tree() {
        let _g = lock();
        set_enabled(true);
        drain();
        {
            let root = Span::root(0xABCD, "cell");
            let ctx = root.ctx().unwrap();
            assert_eq!(ctx.span_id, 0xABCD, "root span id is the trace id");
            let child = Span::child(ctx, "attempt");
            let grandchild = Span::child(child.ctx().unwrap(), "rpc.submit");
            drop(grandchild);
            drop(child);
        }
        let spans = drain();
        set_enabled(false);
        assert_eq!(spans.len(), 3);
        let summary = validate_forest(&spans).unwrap();
        assert_eq!((summary.traces, summary.spans), (1, 3));
        // Children close before parents, so the root drains last.
        assert_eq!(spans[2].name, "cell");
        assert_eq!(spans[2].parent_id, 0);
        assert_eq!(spans[0].name, "rpc.submit");
        assert_eq!(spans[0].parent_id, spans[1].span_id);
    }

    #[test]
    fn validate_forest_rejects_orphans_and_multi_roots() {
        let rec = |trace, span, parent, name: &str| SpanRecord {
            trace_id: trace,
            span_id: span,
            parent_id: parent,
            name: name.into(),
            start_us: 0,
            dur_us: 1,
        };
        // Orphan parent.
        let err = validate_forest(&[rec(1, 1, 0, "root"), rec(1, 5, 99, "lost")]).unwrap_err();
        assert!(err.contains("orphan parent"), "{err}");
        // Two roots in one trace.
        let err = validate_forest(&[rec(1, 1, 0, "a"), rec(1, 2, 0, "b")]).unwrap_err();
        assert!(err.contains("2 root spans"), "{err}");
        // No root at all.
        let err = validate_forest(&[rec(1, 2, 2, "self-loop?")]).unwrap_err();
        assert!(err.contains("no root"), "{err}");
        // A proper two-trace forest passes.
        let ok =
            validate_forest(&[rec(1, 1, 0, "a"), rec(1, 7, 1, "a.1"), rec(2, 2, 0, "b")]).unwrap();
        assert_eq!((ok.traces, ok.spans), (2, 3));
    }

    #[test]
    fn global_cap_drops_and_counts() {
        let _g = lock();
        set_enabled(true);
        drain();
        let before = dropped();
        for i in 0..(GLOBAL_CAP + 100) {
            record_raw(SpanRecord {
                trace_id: 1,
                span_id: i as u64 + 1,
                parent_id: 0,
                name: String::new(),
                start_us: 0,
                dur_us: 0,
            });
        }
        let spans = drain();
        set_enabled(false);
        assert_eq!(spans.len(), GLOBAL_CAP);
        assert_eq!(dropped() - before, 100);
    }

    #[test]
    fn chrome_render_rebases_and_is_loadable_shaped() {
        let spans = vec![
            SpanRecord {
                trace_id: 0x10,
                span_id: 0x10,
                parent_id: 0,
                name: "cell".into(),
                start_us: 1_000,
                dur_us: 500,
            },
            SpanRecord {
                trace_id: 0x10,
                span_id: 0x22,
                parent_id: 0x10,
                name: "attempt".into(),
                start_us: 1_100,
                dur_us: 300,
            },
        ];
        let json = render_chrome_trace(&[SpanSource {
            name: "coordinator".into(),
            spans,
        }]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"process_name\""));
        // Earliest span re-based to ts 0; the child keeps its offset.
        assert!(json.contains("\"ts\":0,"), "{json}");
        assert!(json.contains("\"ts\":100,"), "{json}");
        assert!(json.contains("\"dur\":500"));
        assert!(json.contains("\"parent\":\"0x0000000000000010\""));
    }

    #[test]
    fn phase_acc_sums_are_exact_and_flush_into_a_registry() {
        let mut acc = PhaseAcc::new();
        acc.record(Phase::EventPop, 100);
        acc.record(Phase::Arrival, 2_000);
        acc.record(Phase::Arrival, 3_000);
        acc.record(Phase::Backfill, 1_500); // nested: not in the top-level sum
        assert_eq!(acc.top_level_sum_ns(), 5_100);
        assert_eq!(acc.histogram(Phase::Arrival).count(), 2);

        let r = Registry::new();
        acc.flush_into(&r);
        assert_eq!(r.histogram("sim.phase.arrival_ns").sum(), 5_000);
        assert_eq!(r.histogram("sim.phase.event_pop_ns").count(), 1);
        // Empty phases register nothing.
        assert!(!r.snapshot_json().contains("wake_ns"));

        // A second run's accumulator absorbs into the same histograms.
        let mut acc2 = PhaseAcc::new();
        acc2.record(Phase::Arrival, 1_000);
        acc2.flush_into(&r);
        assert_eq!(r.histogram("sim.phase.arrival_ns").sum(), 6_000);
        assert_eq!(r.histogram("sim.phase.arrival_ns").count(), 3);
    }
}
