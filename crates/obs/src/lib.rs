//! Unified observability for the backfill simulator: structured logging,
//! a metrics registry, and an opt-in decision-trace recorder.
//!
//! The crate is deliberately dependency-free (std only) so it can sit at
//! the bottom of the workspace graph — `sched`, `core`, `service`, and
//! the binaries all layer on top of it without cycles, and the vendored
//! stand-in crates are not pulled into the hot path. Three facilities:
//!
//! * [`log`] — leveled, targeted records behind [`error!`]..[`trace!`]
//!   macros, filtered by a `BFSIM_LOG`-style directive string, emitted as
//!   text or JSON lines. The global handle is an atomic level gate plus a
//!   `OnceLock`, so a disabled level costs one relaxed load and no
//!   formatting.
//! * [`metrics`] — named counters, gauges, and log-scale histograms with
//!   atomic hot-path increments, registered in a process-global (or
//!   per-component) [`metrics::Registry`] and snapshot-able as one
//!   canonical-JSON document (sorted keys, integers only).
//! * [`mod@trace`] — a bounded ring buffer of typed scheduler decisions
//!   (`Arrive`, `Reserve`, `Backfill`, `Start`, `Complete`, `Compress`,
//!   `Preempt`) tagged with job id and paper category, flushable to
//!   JSONL and re-parseable for offline analysis.
//!
//! Everything here is **decision-neutral**: recording observes the
//! simulation, it never feeds back into it. The core test suite asserts
//! schedule fingerprints are byte-identical with observability fully on
//! and fully off.

#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod trace;

pub(crate) mod json;

pub use log::Level;
pub use metrics::{
    merge_snapshots, render_snapshot, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    SnapshotValue,
};
pub use trace::{Recorder, SharedRecorder, TraceCategory, TraceEvent, TraceKind};
