//! Unified observability for the backfill simulator: structured logging,
//! a metrics registry, and an opt-in decision-trace recorder.
//!
//! The crate is deliberately dependency-free (std only) so it can sit at
//! the bottom of the workspace graph — `sched`, `core`, `service`, and
//! the binaries all layer on top of it without cycles, and the vendored
//! stand-in crates are not pulled into the hot path. Four facilities:
//!
//! * [`log`] — leveled, targeted records behind [`error!`]..[`trace!`]
//!   macros, filtered by a `BFSIM_LOG`-style directive string, emitted as
//!   text or JSON lines. The global handle is an atomic level gate plus a
//!   `OnceLock`, so a disabled level costs one relaxed load and no
//!   formatting.
//! * [`metrics`] — named counters, gauges, and log-scale histograms with
//!   atomic hot-path increments, registered in a process-global (or
//!   per-component) [`metrics::Registry`] and snapshot-able as one
//!   canonical-JSON document (sorted keys, integers only).
//! * [`span`] — distributed span tracing (trace/span/parent ids on a
//!   monotonic clock, bounded per-thread buffers) plus the simulator's
//!   per-phase self-profiling accumulator; drained spans merge across
//!   processes into one Chrome-trace timeline per cell.
//! * [`mod@trace`] — a bounded ring buffer of typed scheduler decisions
//!   (`Arrive`, `Reserve`, `Backfill`, `Start`, `Complete`, `Compress`,
//!   `Preempt`) tagged with job id and paper category, flushable to
//!   JSONL and re-parseable for offline analysis.
//!
//! Everything here is **decision-neutral**: recording observes the
//! simulation, it never feeds back into it. The core test suite asserts
//! schedule fingerprints are byte-identical with observability fully on
//! and fully off.

#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod span;
pub mod trace;

pub(crate) mod json;

pub use log::Level;
pub use metrics::{
    merge_snapshots, render_prometheus, render_snapshot, Counter, Gauge, Histogram,
    HistogramSnapshot, LocalHistogram, Registry, SnapshotValue,
};
pub use span::{
    render_chrome_trace, validate_forest, ForestSummary, Phase, PhaseAcc, SharedPhases, Span,
    SpanContext, SpanRecord, SpanSource,
};
pub use trace::{Recorder, SharedRecorder, TraceCategory, TraceEvent, TraceKind};
