//! Minimal JSON helpers shared by the logger, registry, and recorder.
//!
//! `obs` has no dependencies, so the few JSON shapes it emits (flat
//! objects, integer maps) are written by hand. Emission is canonical by
//! construction: callers append fields in a fixed (or sorted) order and
//! all numbers are integers or shortest-round-trip floats.

use std::fmt::Write as _;

/// Append `s` as a JSON string literal (quotes included) onto `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format an `f64` so that it round-trips through `str::parse::<f64>`.
/// Rust's `{}` formatting is shortest-round-trip already; we only need to
/// keep the output valid JSON (no `NaN`/`inf` tokens) and unambiguous.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let text = format!("{v}");
        out.push_str(&text);
        // `2` would parse back fine, but make integral floats explicit so
        // a reader can distinguish them from integer fields.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/inf; null is the conventional stand-in.
        out.push_str("null");
    }
}

/// A cursor over one flat JSON object (no nesting), as produced by the
/// recorder and the logger. Only the value kinds `obs` emits are
/// understood: strings, unsigned/float numbers, booleans.
pub struct FlatObject<'a> {
    rest: &'a str,
    done: bool,
}

/// One decoded scalar value from a [`FlatObject`].
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A JSON string (unescaped).
    Str(String),
    /// A number, kept as text so callers can parse as u64/i64/f64.
    Num(String),
    /// A boolean.
    Bool(bool),
}

impl Scalar {
    /// Interpret as `u64`.
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Scalar::Num(n) => n.parse().map_err(|e| format!("bad u64 `{n}`: {e}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// Interpret as `f64`.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Scalar::Num(n) => n.parse().map_err(|e| format!("bad f64 `{n}`: {e}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// Interpret as a string.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Scalar::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl<'a> FlatObject<'a> {
    /// Start parsing `line`, which must be a single `{...}` object.
    pub fn parse(line: &'a str) -> Result<Self, String> {
        let line = line.trim();
        let inner = line
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| format!("not a JSON object: `{line}`"))?;
        Ok(FlatObject {
            rest: inner.trim(),
            done: inner.trim().is_empty(),
        })
    }

    /// Pull the next `key: value` pair, or `None` at the end.
    pub fn next_pair(&mut self) -> Result<Option<(String, Scalar)>, String> {
        if self.done {
            return Ok(None);
        }
        let (key, after_key) = take_string(self.rest)?;
        let after_colon = after_key
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("expected `:` after key `{key}`"))?
            .trim_start();
        let (value, rest) = take_scalar(after_colon)?;
        let rest = rest.trim_start();
        self.rest = match rest.strip_prefix(',') {
            Some(r) => r.trim_start(),
            None => {
                if !rest.is_empty() {
                    return Err(format!("trailing garbage after `{key}`: `{rest}`"));
                }
                self.done = true;
                ""
            }
        };
        Ok(Some((key, value)))
    }

    /// Collect every pair into a vector (order preserved).
    pub fn pairs(mut self) -> Result<Vec<(String, Scalar)>, String> {
        let mut out = Vec::new();
        while let Some(pair) = self.next_pair()? {
            out.push(pair);
        }
        Ok(out)
    }
}

/// Consume a leading `"..."` literal; return (unescaped content, rest).
fn take_string(s: &str) -> Result<(String, &str), String> {
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err(format!("expected string at `{s}`")),
    }
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + h.to_digit(16).ok_or("bad \\u escape")?;
                    }
                    out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                }
                other => return Err(format!("bad escape `\\{other:?}`")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

/// Consume one scalar value; return (value, rest).
fn take_scalar(s: &str) -> Result<(Scalar, &str), String> {
    if s.starts_with('"') {
        let (text, rest) = take_string(s)?;
        return Ok((Scalar::Str(text), rest));
    }
    if let Some(rest) = s.strip_prefix("true") {
        return Ok((Scalar::Bool(true), rest));
    }
    if let Some(rest) = s.strip_prefix("false") {
        return Ok((Scalar::Bool(false), rest));
    }
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(s.len());
    if end == 0 {
        return Err(format!("expected value at `{s}`"));
    }
    Ok((Scalar::Num(s[..end].to_string()), &s[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_literal_escapes() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn flat_object_round_trip() {
        let line = r#"{"t":12,"cat":"SN","x":-3.5,"ok":true,"msg":"a \"b\""}"#;
        let pairs = FlatObject::parse(line).unwrap().pairs().unwrap();
        assert_eq!(pairs.len(), 5);
        assert_eq!(pairs[0].0, "t");
        assert_eq!(pairs[0].1.as_u64().unwrap(), 12);
        assert_eq!(pairs[1].1.as_str().unwrap(), "SN");
        assert_eq!(pairs[2].1.as_f64().unwrap(), -3.5);
        assert_eq!(pairs[3].1, Scalar::Bool(true));
        assert_eq!(pairs[4].1.as_str().unwrap(), "a \"b\"");
    }

    #[test]
    fn flat_object_rejects_garbage() {
        assert!(FlatObject::parse("not json").is_err());
        assert!(FlatObject::parse(r#"{"a" 1}"#).unwrap().pairs().is_err());
    }

    #[test]
    fn f64_round_trips() {
        for v in [1.0, 0.5, 1.0 / 3.0, 12345.678, 1e-9] {
            let mut out = String::new();
            push_f64(&mut out, v);
            assert_eq!(out.parse::<f64>().unwrap(), v, "text was `{out}`");
        }
    }
}
