//! Named counters, gauges, and log-scale histograms.
//!
//! Metric handles are plain atomics wrapped in `Arc`, so the hot path is
//! a single `fetch_add` with no locking and no allocation; the registry
//! is only touched at registration and snapshot time. Components either
//! ask a [`Registry`] for a handle by name (get-or-create) or create the
//! atomic themselves and [`Registry::bind`] it later — the service uses
//! the latter so its counters exist before any registry does.
//!
//! # Naming convention
//!
//! Dotted lower-case paths, most-general component first:
//! `service.submitted`, `service.cache.hits`, `service.pool.queue_depth`,
//! `sim.profile.find_anchor_calls`, `sim.queue.inserts`. Counters are
//! monotone totals, gauges are instantaneous levels, histograms are
//! distributions (`service.wall_ms`).
//!
//! # Snapshots
//!
//! [`Registry::snapshot_json`] renders one **canonical** JSON document:
//! keys sorted (the map is a `BTreeMap`), integers only, no whitespace.
//! Equal registry states therefore serialize byte-identically, which is
//! what the `bfsimd` `metrics` verb and its tests rely on.

use crate::json::push_str_literal;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotone counter. `Relaxed` increments; `SeqCst` reads, so a
/// snapshot observes every increment that happened-before it.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// An instantaneous level (queue depth, cache entries). Signed so
/// transient dips below zero in racy mirrors are representable rather
/// than wrapping.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i−1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples. Recording is two relaxed
/// `fetch_add`s plus one on the bucket — no floating point, no locks.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Add a frozen histogram's contents in bulk — counts, sum, and
    /// buckets element-wise. This is how per-run [`LocalHistogram`]s
    /// (e.g. the simulator's phase timers) merge into a long-lived
    /// registry without paying per-sample atomics on the hot path.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        for (bucket, &n) in self.buckets.iter().zip(&snap.buckets) {
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// The inclusive upper bound of bucket `i`.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    /// Sum of all samples (wraps only past 2^64).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::SeqCst)
    }

    /// Freeze bucket counts for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::SeqCst))
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// A single-threaded [`Histogram`]: plain fields instead of atomics, for
/// hot paths that are not shared (one simulation run's phase timers).
/// Merge into a shared [`Histogram`] afterwards via
/// [`Histogram::absorb`].
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    count: u64,
    sum: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        LocalHistogram {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Record one sample. The sum wraps on overflow, exactly like the
    /// atomic [`Histogram`]'s `fetch_add`.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.buckets[Histogram::bucket_of(v)] += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Freeze for reporting or [`Histogram::absorb`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            buckets: self.buckets.to_vec(),
        }
    }
}

/// A frozen [`Histogram`]: counts per bucket plus totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// One count per bucket (see [`Histogram::bucket_upper_bound`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing the `q`-quantile (0 ≤ q ≤ 1)
    /// — a coarse tail estimate, exact to within the bucket's factor-of-2
    /// width. `None` when empty.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        // Rank of the wanted sample, 1-based; q=0 → first, q=1 → last.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Histogram::bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }
}

/// One named metric handle.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotone counter.
    Counter(Arc<Counter>),
    /// An instantaneous level.
    Gauge(Arc<Gauge>),
    /// A distribution.
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metric handles. Cheap to share (`Arc` it) and
/// cheap to read on the hot path (handles are plain atomics; the inner
/// mutex guards only the name map).
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Get-or-create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Get-or-create the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Get-or-create the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Register an existing handle under `name` (replacing any previous
    /// binding). Lets a component own its atomics and expose them to a
    /// registry created later.
    pub fn bind(&self, name: &str, metric: Metric) {
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.insert(name.to_string(), metric);
    }

    /// Read every metric. Values are loaded `SeqCst` while holding the
    /// name map, so the snapshot is internally ordered — but individual
    /// metrics still advance concurrently; invariants between specific
    /// counters are the caller's job (see the service's documented read
    /// order).
    pub fn snapshot(&self) -> Vec<(String, SnapshotValue)> {
        let map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Metric::Histogram(h) => SnapshotValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Render the canonical JSON document described at the
    /// [module level](self).
    pub fn snapshot_json(&self) -> String {
        render_snapshot(&self.snapshot())
    }
}

/// Render a snapshot as the canonical JSON document described at the
/// [module level](self). [`Registry::snapshot_json`] delegates here;
/// the sweep coordinator uses it directly to render a
/// [`merge_snapshots`]-aggregated snapshot in the same format the
/// daemons emit.
///
/// Names must be unique and sorted (both hold for [`Registry::snapshot`]
/// and [`merge_snapshots`] output) for the result to be canonical.
pub fn render_snapshot(snap: &[(String, SnapshotValue)]) -> String {
    let mut counters = String::new();
    let mut gauges = String::new();
    let mut histograms = String::new();
    for (name, value) in snap {
        match value {
            SnapshotValue::Counter(v) => {
                if !counters.is_empty() {
                    counters.push(',');
                }
                push_str_literal(&mut counters, name);
                counters.push(':');
                counters.push_str(&v.to_string());
            }
            SnapshotValue::Gauge(v) => {
                if !gauges.is_empty() {
                    gauges.push(',');
                }
                push_str_literal(&mut gauges, name);
                gauges.push(':');
                gauges.push_str(&v.to_string());
            }
            SnapshotValue::Histogram(h) => {
                if !histograms.is_empty() {
                    histograms.push(',');
                }
                push_str_literal(&mut histograms, name);
                histograms.push_str(":{\"buckets\":[");
                let mut first = true;
                for (i, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    if !first {
                        histograms.push(',');
                    }
                    first = false;
                    histograms.push('[');
                    histograms.push_str(&Histogram::bucket_upper_bound(i).to_string());
                    histograms.push(',');
                    histograms.push_str(&n.to_string());
                    histograms.push(']');
                }
                histograms.push_str("],\"count\":");
                histograms.push_str(&h.count.to_string());
                for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                    histograms.push_str(",\"");
                    histograms.push_str(label);
                    histograms.push_str("\":");
                    histograms.push_str(&h.approx_quantile(q).unwrap_or(0).to_string());
                }
                histograms.push_str(",\"sum\":");
                histograms.push_str(&h.sum.to_string());
                histograms.push('}');
            }
        }
    }
    format!(
        "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
    )
}

/// A metric name in Prometheus form: dots (and any other character
/// outside `[a-zA-Z0-9_:]`) become underscores.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render a snapshot in the Prometheus text exposition format.
///
/// Counters and gauges become one `# TYPE` line plus one sample line.
/// Histograms expose the classic triplet: cumulative
/// `name_bucket{le="..."}` series (one line per log₂ bucket up to the
/// highest non-empty one, then the mandatory `le="+Inf"`), `name_sum`,
/// and `name_count`. Like [`render_snapshot`], equal snapshots render
/// byte-identically, so the output is golden-testable.
pub fn render_prometheus(snap: &[(String, SnapshotValue)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(snap.len() * 64);
    for (name, value) in snap {
        let name = prom_name(name);
        match value {
            SnapshotValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
            }
            SnapshotValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
            }
            SnapshotValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let last = h
                    .buckets
                    .iter()
                    .rposition(|&n| n > 0)
                    .map(|i| i.min(HISTOGRAM_BUCKETS - 2))
                    .unwrap_or(0);
                let mut cumulative = 0u64;
                for (i, &n) in h.buckets.iter().enumerate().take(last + 1) {
                    cumulative += n;
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{}\"}} {cumulative}",
                        Histogram::bucket_upper_bound(i)
                    );
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
            }
        }
    }
    out
}

/// Merge per-shard snapshots into one aggregate, keyed by metric name.
///
/// Counters and gauges add; histograms add `count`, `sum`, and buckets
/// element-wise (shorter bucket vectors are padded with zeros), which is
/// exact because every sample lives in exactly one bucket. If the same
/// name appears with different kinds across shards — only possible when
/// shards run different builds — the first-seen kind wins and later
/// clashes are ignored rather than panicking, since a merged report
/// from a degraded fleet is more useful than none.
pub fn merge_snapshots(snaps: &[Vec<(String, SnapshotValue)>]) -> Vec<(String, SnapshotValue)> {
    let mut merged: BTreeMap<String, SnapshotValue> = BTreeMap::new();
    for snap in snaps {
        for (name, value) in snap {
            match merged.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(value.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    match (slot.get_mut(), value) {
                        (SnapshotValue::Counter(a), SnapshotValue::Counter(b)) => {
                            *a = a.wrapping_add(*b);
                        }
                        (SnapshotValue::Gauge(a), SnapshotValue::Gauge(b)) => {
                            *a = a.wrapping_add(*b);
                        }
                        (SnapshotValue::Histogram(a), SnapshotValue::Histogram(b)) => {
                            a.count = a.count.wrapping_add(b.count);
                            a.sum = a.sum.wrapping_add(b.sum);
                            if a.buckets.len() < b.buckets.len() {
                                a.buckets.resize(b.buckets.len(), 0);
                            }
                            for (dst, src) in a.buckets.iter_mut().zip(&b.buckets) {
                                *dst = dst.wrapping_add(*src);
                            }
                        }
                        _ => {} // kind clash across shards: keep first
                    }
                }
            }
        }
    }
    merged.into_iter().collect()
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram contents.
    Histogram(HistogramSnapshot),
}

/// The process-global registry. Simulation-core counters (availability
/// profile, scheduler queue, fits cache) are flushed here once per run;
/// long-lived components like the service daemon keep their own
/// [`Registry`] instead so concurrent servers in one process (tests) do
/// not share counters.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_buckets_and_bounds() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.buckets[0], 1); // 0
        assert_eq!(snap.buckets[1], 1); // 1
        assert_eq!(snap.buckets[2], 2); // 2..3
        assert_eq!(snap.buckets[3], 1); // 4..7
        assert_eq!(snap.buckets[11], 1); // 1024..2047
        assert_eq!(snap.buckets[64], 1); // top bucket
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(11), 2047);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().approx_quantile(0.5), None);
        for _ in 0..90 {
            h.record(3); // bucket 2, upper bound 3
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10, upper bound 1023
        }
        let snap = h.snapshot();
        assert_eq!(snap.approx_quantile(0.0), Some(3));
        assert_eq!(snap.approx_quantile(0.5), Some(3));
        assert_eq!(snap.approx_quantile(0.9), Some(3));
        assert_eq!(snap.approx_quantile(0.91), Some(1023));
        assert_eq!(snap.approx_quantile(1.0), Some(1023));
    }

    #[test]
    fn registry_get_or_create_and_bind() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.inc();
        assert_eq!(b.get(), 1, "same name must alias the same counter");

        let mine = Arc::new(Counter::new());
        mine.add(9);
        r.bind("x.bound", Metric::Counter(mine.clone()));
        assert_eq!(r.counter("x.bound").get(), 9);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn registry_rejects_kind_clash() {
        let r = Registry::new();
        r.counter("dual");
        r.gauge("dual");
    }

    #[test]
    fn merge_adds_counters_gauges_and_histogram_buckets() {
        let a = Registry::new();
        a.counter("hits").add(3);
        a.gauge("depth").set(2);
        a.histogram("lat").record(5);
        a.counter("only.a").inc();

        let b = Registry::new();
        b.counter("hits").add(4);
        b.gauge("depth").set(-5);
        b.histogram("lat").record(5);
        b.histogram("lat").record(1000);
        b.histogram("only.b").record(1);

        let merged = merge_snapshots(&[a.snapshot(), b.snapshot()]);
        let get = |name: &str| {
            merged
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("hits"), SnapshotValue::Counter(7));
        assert_eq!(get("depth"), SnapshotValue::Gauge(-3));
        assert_eq!(get("only.a"), SnapshotValue::Counter(1));
        match get("lat") {
            SnapshotValue::Histogram(h) => {
                assert_eq!(h.count, 3);
                assert_eq!(h.sum, 1010);
                assert_eq!(h.buckets[3], 2); // two samples of 5
                assert_eq!(h.buckets[10], 1); // one sample of 1000
            }
            other => panic!("lat merged to {other:?}"),
        }
        match get("only.b") {
            SnapshotValue::Histogram(h) => assert_eq!((h.count, h.sum), (1, 1)),
            other => panic!("only.b merged to {other:?}"),
        }
        // Names stay sorted so render_snapshot output stays canonical.
        let names: Vec<&str> = merged.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn merge_kind_clash_keeps_first() {
        let a = Registry::new();
        a.counter("dual").add(2);
        let b = Registry::new();
        b.gauge("dual").set(9);
        let merged = merge_snapshots(&[a.snapshot(), b.snapshot()]);
        assert_eq!(merged, vec![("dual".into(), SnapshotValue::Counter(2))]);
    }

    #[test]
    fn render_snapshot_matches_registry_rendering() {
        let r = Registry::new();
        r.counter("c").add(2);
        r.gauge("g").set(-1);
        r.histogram("h").record(12);
        assert_eq!(render_snapshot(&r.snapshot()), r.snapshot_json());
        // A single-registry "merge" is the identity, so rendering the
        // merged snapshot reproduces the daemon's own document.
        assert_eq!(
            render_snapshot(&merge_snapshots(&[r.snapshot()])),
            r.snapshot_json()
        );
    }

    #[test]
    fn local_histogram_matches_atomic_and_absorbs() {
        let atomic = Histogram::new();
        let mut local = LocalHistogram::new();
        for v in [0, 1, 5, 1024, u64::MAX] {
            atomic.record(v);
            local.record(v);
        }
        assert_eq!(local.snapshot(), atomic.snapshot());

        let target = Histogram::new();
        target.record(5);
        target.absorb(&local.snapshot());
        let snap = target.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 5 + local.sum());
        assert_eq!(snap.buckets[3], 2, "two samples of 5 after absorb");
    }

    #[test]
    fn prometheus_rendering_is_pinned() {
        let r = Registry::new();
        r.counter("service.submitted").add(12);
        r.gauge("service.pool.queue_depth").set(-2);
        r.histogram("service.wall_ms").record(5);
        r.histogram("service.wall_ms").record(900);
        let text = render_prometheus(&r.snapshot());
        let expected = "\
# TYPE service_pool_queue_depth gauge
service_pool_queue_depth -2
# TYPE service_submitted counter
service_submitted 12
# TYPE service_wall_ms histogram
service_wall_ms_bucket{le=\"0\"} 0
service_wall_ms_bucket{le=\"1\"} 0
service_wall_ms_bucket{le=\"3\"} 0
service_wall_ms_bucket{le=\"7\"} 1
service_wall_ms_bucket{le=\"15\"} 1
service_wall_ms_bucket{le=\"31\"} 1
service_wall_ms_bucket{le=\"63\"} 1
service_wall_ms_bucket{le=\"127\"} 1
service_wall_ms_bucket{le=\"255\"} 1
service_wall_ms_bucket{le=\"511\"} 1
service_wall_ms_bucket{le=\"1023\"} 2
service_wall_ms_bucket{le=\"+Inf\"} 2
service_wall_ms_sum 905
service_wall_ms_count 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_rendering_handles_empty_and_top_bucket() {
        let r = Registry::new();
        r.histogram("empty");
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("empty_bucket{le=\"0\"} 0\nempty_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("empty_sum 0\nempty_count 0"));

        let r = Registry::new();
        r.histogram("top").record(u64::MAX);
        let text = render_prometheus(&r.snapshot());
        // The overflow bucket is only representable as +Inf; the last
        // finite le stays at bucket 63's bound.
        assert!(text.contains(&format!("top_bucket{{le=\"{}\"}} 0", (1u64 << 63) - 1)));
        assert!(text.contains("top_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn snapshot_json_is_canonical() {
        let r = Registry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").inc();
        r.gauge("depth").set(3);
        r.histogram("lat").record(5);
        let a = r.snapshot_json();
        let b = r.snapshot_json();
        assert_eq!(a, b, "equal states must serialize byte-identically");
        assert_eq!(
            a,
            "{\"counters\":{\"a.first\":1,\"b.second\":2},\
             \"gauges\":{\"depth\":3},\
             \"histograms\":{\"lat\":{\"buckets\":[[7,1]],\"count\":1,\
             \"p50\":7,\"p90\":7,\"p99\":7,\"sum\":5}}}"
        );
    }
}
