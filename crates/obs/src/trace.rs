//! Opt-in decision-trace recording.
//!
//! A [`Recorder`] is a bounded ring buffer of typed scheduler events,
//! each tagged with the job id and the paper's workload category
//! (SN/SW/LN/LW). The driver tags every job at arrival and emits the
//! lifecycle events (`Arrive`, `Start`, `Complete`, `Preempt`);
//! schedulers that hold an availability profile additionally emit their
//! decisions (`Reserve`, `Backfill`, `Compress`). Recording is strictly
//! observational: nothing in here feeds back into scheduling, so traces
//! are decision-neutral by construction.
//!
//! # JSONL schema
//!
//! One flat object per event, fields in fixed order:
//!
//! ```text
//! {"t":<sim-seconds>,"job":<id>,"cat":"SN|SW|LN|LW|?","ev":"<kind>",...payload}
//! ```
//!
//! Payload fields per kind (alphabetical): `Arrive {estimate, width}`,
//! `Reserve {anchor}`, `Backfill {filled_hole}`, `Start {}`,
//! `Complete {overestimate_factor}`, `Compress {moved}`, `Preempt {}`.
//! Times and durations are integral simulation seconds;
//! `overestimate_factor` (estimate ÷ actual runtime) is a float.
//! [`TraceEvent::parse_json_line`] accepts the fields in any order, so
//! the format round-trips through external tools.

use crate::json::{push_f64, push_str_literal, FlatObject};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::rc::Rc;

/// Default ring capacity: enough for every event of a paper-scale run
/// (~5 events per job × 10 000 jobs) without unbounded growth.
pub const DEFAULT_TRACE_CAP: usize = 1 << 16;

/// The paper's four workload categories (Short/Long × Narrow/Wide), plus
/// `Unknown` for events recorded before the job was tagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCategory {
    /// Short-Narrow.
    SN,
    /// Short-Wide.
    SW,
    /// Long-Narrow.
    LN,
    /// Long-Wide.
    LW,
    /// Not tagged (never arrived through a tagging driver).
    Unknown,
}

impl TraceCategory {
    /// Wire label (`"?"` for unknown).
    pub fn label(self) -> &'static str {
        match self {
            TraceCategory::SN => "SN",
            TraceCategory::SW => "SW",
            TraceCategory::LN => "LN",
            TraceCategory::LW => "LW",
            TraceCategory::Unknown => "?",
        }
    }

    /// Parse a wire label.
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "SN" => TraceCategory::SN,
            "SW" => TraceCategory::SW,
            "LN" => TraceCategory::LN,
            "LW" => TraceCategory::LW,
            "?" => TraceCategory::Unknown,
            other => return Err(format!("unknown category `{other}`")),
        })
    }
}

/// What the scheduler (or driver) did.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// The job entered the system.
    Arrive {
        /// User runtime estimate, seconds.
        estimate: u64,
        /// Processors requested.
        width: u32,
    },
    /// A reservation was (re)established at `anchor`.
    Reserve {
        /// Absolute reservation start, sim seconds.
        anchor: u64,
    },
    /// The job was started out of queue order into an idle hole.
    Backfill {
        /// Length of the hole it slotted into, seconds (time until the
        /// blocking reservation's anchor).
        filled_hole: u64,
    },
    /// The job began executing.
    Start,
    /// The job finished.
    Complete {
        /// Estimate ÷ actual runtime (≥ 1 for conservative estimates).
        overestimate_factor: f64,
    },
    /// Compression moved the job's reservation earlier.
    Compress {
        /// How much earlier, seconds.
        moved: u64,
    },
    /// The job was suspended by a preemptive scheduler.
    Preempt,
}

impl TraceKind {
    /// Wire name of the variant.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Arrive { .. } => "Arrive",
            TraceKind::Reserve { .. } => "Reserve",
            TraceKind::Backfill { .. } => "Backfill",
            TraceKind::Start => "Start",
            TraceKind::Complete { .. } => "Complete",
            TraceKind::Compress { .. } => "Compress",
            TraceKind::Preempt => "Preempt",
        }
    }
}

/// One recorded decision: when, which job, its category, and what.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time, seconds.
    pub time: u64,
    /// Job identifier.
    pub job: u64,
    /// The job's paper category at tagging time.
    pub category: TraceCategory,
    /// The decision.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Render the JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(80);
        let _ = write!(out, "{{\"t\":{},\"job\":{},\"cat\":", self.time, self.job);
        push_str_literal(&mut out, self.category.label());
        out.push_str(",\"ev\":");
        push_str_literal(&mut out, self.kind.name());
        match &self.kind {
            TraceKind::Arrive { estimate, width } => {
                let _ = write!(out, ",\"estimate\":{estimate},\"width\":{width}");
            }
            TraceKind::Reserve { anchor } => {
                let _ = write!(out, ",\"anchor\":{anchor}");
            }
            TraceKind::Backfill { filled_hole } => {
                let _ = write!(out, ",\"filled_hole\":{filled_hole}");
            }
            TraceKind::Complete {
                overestimate_factor,
            } => {
                out.push_str(",\"overestimate_factor\":");
                push_f64(&mut out, *overestimate_factor);
            }
            TraceKind::Compress { moved } => {
                let _ = write!(out, ",\"moved\":{moved}");
            }
            TraceKind::Start | TraceKind::Preempt => {}
        }
        out.push('}');
        out
    }

    /// Parse one JSONL line (fields accepted in any order).
    pub fn parse_json_line(line: &str) -> Result<TraceEvent, String> {
        let mut time = None;
        let mut job = None;
        let mut cat = None;
        let mut ev = None;
        let mut fields: HashMap<String, crate::json::Scalar> = HashMap::new();
        for (key, value) in FlatObject::parse(line)?.pairs()? {
            match key.as_str() {
                "t" => time = Some(value.as_u64()?),
                "job" => job = Some(value.as_u64()?),
                "cat" => cat = Some(TraceCategory::parse(value.as_str()?)?),
                "ev" => ev = Some(value.as_str()?.to_string()),
                _ => {
                    fields.insert(key, value);
                }
            }
        }
        let field_u64 = |name: &str| -> Result<u64, String> {
            fields
                .get(name)
                .ok_or_else(|| format!("missing field `{name}`"))?
                .as_u64()
        };
        let ev = ev.ok_or("missing field `ev`")?;
        let kind = match ev.as_str() {
            "Arrive" => TraceKind::Arrive {
                estimate: field_u64("estimate")?,
                width: field_u64("width")? as u32,
            },
            "Reserve" => TraceKind::Reserve {
                anchor: field_u64("anchor")?,
            },
            "Backfill" => TraceKind::Backfill {
                filled_hole: field_u64("filled_hole")?,
            },
            "Start" => TraceKind::Start,
            "Complete" => TraceKind::Complete {
                overestimate_factor: fields
                    .get("overestimate_factor")
                    .ok_or("missing field `overestimate_factor`")?
                    .as_f64()?,
            },
            "Compress" => TraceKind::Compress {
                moved: field_u64("moved")?,
            },
            "Preempt" => TraceKind::Preempt,
            other => return Err(format!("unknown event kind `{other}`")),
        };
        Ok(TraceEvent {
            time: time.ok_or("missing field `t`")?,
            job: job.ok_or("missing field `job`")?,
            category: cat.unwrap_or(TraceCategory::Unknown),
            kind,
        })
    }
}

/// A bounded ring buffer of [`TraceEvent`]s plus the job→category tag
/// map. Once `cap` events are held, each new event overwrites the oldest
/// (`dropped` counts the overwritten ones), so a runaway run can never
/// exhaust memory.
#[derive(Debug)]
pub struct Recorder {
    cap: usize,
    /// Ring storage; grows to `cap` then wraps.
    buf: Vec<TraceEvent>,
    /// Index the next event is written to once the ring is full.
    next: usize,
    dropped: u64,
    tags: HashMap<u64, TraceCategory>,
}

impl Recorder {
    /// A recorder holding at most `cap` events (minimum 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Recorder {
            cap,
            buf: Vec::new(),
            next: 0,
            dropped: 0,
            tags: HashMap::new(),
        }
    }

    /// Maximum events held.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Events currently held (≤ cap).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Associate `job` with its paper category (the driver calls this at
    /// arrival; category assignment uses the actual runtime, which
    /// schedulers never see — tagging lives with the driver on purpose).
    pub fn tag(&mut self, job: u64, category: TraceCategory) {
        self.tags.insert(job, category);
    }

    /// The category `job` was tagged with (or `Unknown`).
    pub fn category_of(&self, job: u64) -> TraceCategory {
        self.tags
            .get(&job)
            .copied()
            .unwrap_or(TraceCategory::Unknown)
    }

    /// Record one event, tagging it from the category map.
    pub fn record(&mut self, time: u64, job: u64, kind: TraceKind) {
        let event = TraceEvent {
            time,
            job,
            category: self.category_of(job),
            kind,
        };
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.next] = event;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Write the retained events as JSONL, oldest first.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for event in self.events() {
            w.write_all(event.to_json_line().as_bytes())?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }
}

/// The recorder handle threaded through driver and scheduler. A run is
/// single-threaded, so `Rc<RefCell<…>>` suffices; service workers each
/// own their recorder.
pub type SharedRecorder = Rc<RefCell<Recorder>>;

/// Convenience constructor for a [`SharedRecorder`].
pub fn shared(cap: usize) -> SharedRecorder {
    Rc::new(RefCell::new(Recorder::new(cap)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_kind() -> Vec<TraceKind> {
        vec![
            TraceKind::Arrive {
                estimate: 3600,
                width: 4,
            },
            TraceKind::Reserve { anchor: 7200 },
            TraceKind::Backfill { filled_hole: 900 },
            TraceKind::Start,
            TraceKind::Complete {
                overestimate_factor: 2.5,
            },
            TraceKind::Compress { moved: 300 },
            TraceKind::Preempt,
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        for (i, kind) in every_kind().into_iter().enumerate() {
            let event = TraceEvent {
                time: 100 + i as u64,
                job: i as u64,
                category: [
                    TraceCategory::SN,
                    TraceCategory::SW,
                    TraceCategory::LN,
                    TraceCategory::LW,
                    TraceCategory::Unknown,
                ][i % 5],
                kind,
            };
            let line = event.to_json_line();
            assert!(!line.contains('\n'));
            let back = TraceEvent::parse_json_line(&line).unwrap();
            assert_eq!(back, event, "line was `{line}`");
        }
    }

    #[test]
    fn parse_accepts_any_field_order() {
        let event = TraceEvent::parse_json_line(
            r#"{"ev":"Arrive","width":8,"estimate":60,"cat":"LW","job":3,"t":5}"#,
        )
        .unwrap();
        assert_eq!(event.job, 3);
        assert_eq!(event.category, TraceCategory::LW);
        assert_eq!(
            event.kind,
            TraceKind::Arrive {
                estimate: 60,
                width: 8
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(TraceEvent::parse_json_line("not json").is_err());
        assert!(TraceEvent::parse_json_line(r#"{"t":1,"job":2,"cat":"SN"}"#).is_err());
        assert!(
            TraceEvent::parse_json_line(r#"{"t":1,"job":2,"cat":"SN","ev":"Reserve"}"#).is_err(),
            "Reserve without anchor must be rejected"
        );
        assert!(TraceEvent::parse_json_line(r#"{"t":1,"job":2,"cat":"XX","ev":"Start"}"#).is_err());
    }

    #[test]
    fn ring_wraps_at_cap() {
        let mut rec = Recorder::new(4);
        for i in 0..10u64 {
            rec.record(i, i, TraceKind::Start);
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let times: Vec<u64> = rec.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![6, 7, 8, 9], "oldest events are overwritten");
    }

    #[test]
    fn category_tagging() {
        let mut rec = Recorder::new(8);
        rec.tag(1, TraceCategory::LW);
        rec.record(0, 1, TraceKind::Start);
        rec.record(0, 2, TraceKind::Start);
        let events = rec.events();
        assert_eq!(events[0].category, TraceCategory::LW);
        assert_eq!(events[1].category, TraceCategory::Unknown);
    }

    #[test]
    fn write_jsonl_emits_one_line_per_event() {
        let mut rec = Recorder::new(8);
        rec.tag(1, TraceCategory::SN);
        rec.record(10, 1, TraceKind::Start);
        rec.record(
            20,
            1,
            TraceKind::Complete {
                overestimate_factor: 1.0,
            },
        );
        let mut out = Vec::new();
        rec.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            TraceEvent::parse_json_line(line).unwrap();
        }
    }
}
