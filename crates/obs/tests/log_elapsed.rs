//! The opt-in `elapsed_ms` log field. Lives in its own test binary: the
//! global logger installs once per process, so this init must not race
//! the crate's unit tests.

use obs::log::{Filter, Level, LogConfig, Sink};
use std::io::Write;
use std::sync::{Arc, Mutex};

#[derive(Clone, Default)]
struct Buf(Arc<Mutex<Vec<u8>>>);

impl Write for Buf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn elapsed_ms_rides_json_records_when_opted_in() {
    let buf = Buf::default();
    obs::log::init(LogConfig {
        filter: Filter::uniform(Level::Info),
        json: true,
        sink: Sink::Writer(Box::new(buf.clone())),
        elapsed: true,
    })
    .expect("first init in this process");

    obs::info!(target: "test", "hello");
    obs::info!(target: "test", "again");

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    // seq stays the deterministic leading field; elapsed_ms follows it.
    assert!(lines[0].starts_with("{\"seq\":0,\"elapsed_ms\":"), "{text}");
    assert!(lines[1].starts_with("{\"seq\":1,\"elapsed_ms\":"), "{text}");
    for line in &lines {
        let pairs = parse_flat(line);
        let ms: u64 = pairs
            .iter()
            .find(|(k, _)| k == "elapsed_ms")
            .expect("elapsed_ms present")
            .1
            .parse()
            .expect("elapsed_ms is an integer");
        assert!(ms < 60_000, "monotonic-from-init, not a wall clock: {ms}");
    }
}

/// Tiny flat-object splitter good enough for the logger's own output.
fn parse_flat(line: &str) -> Vec<(String, String)> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap();
    inner
        .split(',')
        .map(|pair| {
            let (k, v) = pair.split_once(':').unwrap();
            (
                k.trim_matches('"').to_string(),
                v.trim_matches('"').to_string(),
            )
        })
        .collect()
}
