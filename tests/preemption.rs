//! End-to-end tests of the preemption substrate: suspend/resume timelines,
//! work conservation, and the starvation-rescue behaviour of selective
//! preemption (the authors' companion ICPP 2002 strategy).

use backfill_sim::prelude::*;

fn job(id: u32, arrival: u64, runtime: u64, estimate: u64, width: u32) -> Job {
    Job {
        id: JobId(id),
        arrival: SimTime::new(arrival),
        runtime: SimSpan::new(runtime),
        estimate: SimSpan::new(estimate),
        width,
    }
}

/// A hog holds the machine; a short wide job starves past the threshold
/// and must preempt the hog, which later resumes and still finishes with
/// exactly its runtime of execution.
#[test]
fn starving_job_preempts_and_hog_resumes() {
    let trace = Trace::new(
        "rescue",
        8,
        vec![
            job(0, 0, 50_000, 50_000, 8), // the hog
            job(1, 10, 1_000, 1_000, 8),  // starves; xf 2 at wait 1000
        ],
    )
    .unwrap();
    let schedule = simulate(
        &trace,
        SchedulerKind::Preemptive { threshold: 2.0 },
        Policy::Fcfs,
    );
    schedule
        .validate()
        .expect("audit incl. segment work conservation");

    let hog = &schedule.outcomes[0];
    let starved = &schedule.outcomes[1];
    // The starving job ran long before the hog's natural end at 50 000.
    assert!(
        starved.start.as_secs() < 5_000,
        "preemption should rescue the starving job (started {})",
        starved.start
    );
    assert!(hog.was_preempted(), "the hog must have been suspended");
    assert!(!starved.was_preempted());
    // Work conservation shows up as end - start > runtime for the hog.
    assert!(hog.end() > hog.start + hog.job.runtime);
    // Both segments of the hog appear in the run-segment audit trail.
    let hog_segments = schedule.run_segments.iter().filter(|s| s.id == 0).count();
    assert_eq!(
        hog_segments, 2,
        "one segment before and one after suspension"
    );
}

/// With an infinite threshold nothing is ever suspended and the schedule
/// equals EASY's, job for job.
#[test]
fn infinite_threshold_is_easy() {
    let trace = Trace::new(
        "noop",
        8,
        vec![
            job(0, 0, 1_000, 1_000, 6),
            job(1, 5, 700, 900, 8),
            job(2, 9, 200, 300, 2),
            job(3, 20, 100, 100, 4),
        ],
    )
    .unwrap();
    let easy = simulate(&trace, SchedulerKind::Easy, Policy::Sjf);
    let pre = simulate(
        &trace,
        SchedulerKind::Preemptive {
            threshold: f64::INFINITY,
        },
        Policy::Sjf,
    );
    assert_eq!(easy.fingerprint(), pre.fingerprint());
    assert_eq!(
        pre.run_segments.len(),
        4,
        "one segment per job, no suspensions"
    );
}

/// The journal records preemption events in causal order.
#[test]
fn journal_shows_preempt_between_starts() {
    let trace = Trace::new(
        "journal",
        8,
        vec![job(0, 0, 50_000, 50_000, 8), job(1, 10, 1_000, 1_000, 8)],
    )
    .unwrap();
    let (_, journal) = simulate_journaled(
        &trace,
        SchedulerKind::Preemptive { threshold: 2.0 },
        Policy::Fcfs,
    );
    let kinds: Vec<JournalKind> = journal
        .iter()
        .filter(|e| e.job == Some(JobId(0)))
        .map(|e| e.kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            JournalKind::Arrive,   // submitted
            JournalKind::Start,    // hog starts
            JournalKind::Preempt,  // suspended for the starving job
            JournalKind::Start,    // resumes
            JournalKind::Complete, // finishes
        ]
    );
}

/// Preemption at scale: a noisy high-load workload runs to completion with
/// every audit passing and a sane number of suspensions.
#[test]
fn preemption_at_scale_is_sound() {
    let scenario = Scenario {
        source: TraceSource::Ctc {
            jobs: 3_000,
            seed: 11,
        },
        estimate: EstimateModel::User(UserModelParams::capped(SimSpan::from_hours(18))),
        estimate_seed: 3,
        load: Some(0.95),
    };
    let trace = scenario.materialize();
    let schedule = simulate(
        &trace,
        SchedulerKind::Preemptive { threshold: 2.0 },
        Policy::Fcfs,
    );
    schedule.validate().expect("audit");
    let suspended = schedule
        .outcomes
        .iter()
        .filter(|o| o.was_preempted())
        .count();
    assert!(
        suspended > 0,
        "high load + threshold 2 should suspend someone"
    );
    assert!(
        suspended < trace.len() / 2,
        "safeguards should keep suspensions bounded ({suspended})"
    );
    // Preemption must tame the worst case relative to plain EASY.
    let easy = simulate(&trace, SchedulerKind::Easy, Policy::Fcfs);
    let stats_pre = schedule.stats(&CategoryCriteria::default());
    let stats_easy = easy.stats(&CategoryCriteria::default());
    assert!(
        stats_pre.overall.worst_turnaround() <= stats_easy.overall.worst_turnaround() * 1.2,
        "preemption should not blow up the worst case: {} vs {}",
        stats_pre.overall.worst_turnaround(),
        stats_easy.overall.worst_turnaround()
    );
}
