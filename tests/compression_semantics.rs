//! Pinning tests for the four conservative-compression semantics.
//!
//! These hand-constructed scenarios document *exactly* how each variant
//! reacts to an early completion — the under-specified design axis that
//! EXPERIMENTS.md shows can swing inaccurate-estimate results by 45×.
//! If any of these start times change, the compression semantics changed,
//! and every Section-5 number in EXPERIMENTS.md must be re-derived.

use backfill_sim::prelude::*;

fn job(id: u32, arrival: u64, runtime: u64, estimate: u64, width: u32) -> Job {
    Job {
        id: JobId(id),
        arrival: SimTime::new(arrival),
        runtime: SimSpan::new(runtime),
        estimate: SimSpan::new(estimate),
        width,
    }
}

fn starts(trace: &Trace, kind: SchedulerKind) -> Vec<u64> {
    let s = simulate(trace, kind, Policy::Fcfs);
    s.validate().expect("audit");
    s.outcomes.iter().map(|o| o.start.as_secs()).collect()
}

/// Scenario 1: one badly overestimated hog, two full-width followers.
///
/// j0 claims 1000 s but runs 100 s (8-wide). j1 (500 s, 8-wide) is anchored
/// at 1000; j2 (100 s, 8-wide) at 1500. The hole at t = 100 separates the
/// variants.
#[test]
fn scenario_full_width_chain() {
    let trace = Trace::new(
        "chain",
        8,
        vec![
            job(0, 0, 100, 1000, 8),
            job(1, 1, 500, 500, 8),
            job(2, 2, 100, 100, 8),
        ],
    )
    .unwrap();

    // Backfill: j1 hops into the hole (it can start *now*); j2's anchor at
    // 1500 is untouched — the gap [600, 1500) stays reserved-but-idle
    // because j1's completion at 600 is exact (no new hole, no compression).
    assert_eq!(
        starts(&trace, SchedulerKind::Conservative),
        vec![0, 100, 1500]
    );

    // Reanchor: j1 hops in AND j2 is re-anchored to follow at 600.
    assert_eq!(
        starts(&trace, SchedulerKind::ConservativeReanchor),
        vec![0, 100, 600]
    );

    // HeadStart behaves like Backfill here (the head itself could start).
    assert_eq!(
        starts(&trace, SchedulerKind::ConservativeHeadStart),
        vec![0, 100, 1500]
    );

    // None: nobody moves; j1 waits for its original guarantee at 1000.
    assert_eq!(
        starts(&trace, SchedulerKind::ConservativeNoCompress),
        vec![0, 1000, 1500]
    );

    // EASY for reference: identical to Reanchor on this trace.
    assert_eq!(starts(&trace, SchedulerKind::Easy), vec![0, 100, 600]);
}

/// Scenario 2: the hole fits only a *lower-priority* job.
///
/// Two 4-wide hogs (j0a runs 100 s of a 1000 s claim; j0b runs 500 s,
/// freeing everything at t = 500). j1 (8-wide) cannot use the 4-proc hole
/// at t = 100; j2 (4-wide) can.
/// Whether j2 is allowed to grab it past the blocked j1 is exactly the
/// Backfill-vs-HeadStart distinction.
#[test]
fn scenario_hole_fits_only_lower_priority() {
    let trace = Trace::new(
        "hole",
        8,
        vec![
            job(0, 0, 100, 1000, 4), // j0a: early completion at 100
            job(1, 0, 500, 1000, 4), // j0b: early completion at 600
            job(2, 1, 500, 500, 8),  // j1: anchored at 1000
            job(3, 2, 100, 100, 4),  // j2: anchored at 1500
        ],
    )
    .unwrap();

    // Backfill: j2 grabs the t=100 hole past the blocked j1; the full
    // machine frees at j0b's early completion (t=500), letting j1 start.
    assert_eq!(
        starts(&trace, SchedulerKind::Conservative),
        vec![0, 0, 500, 100]
    );

    // Reanchor agrees here (j1's earliest anchor at t=100 is still 1000,
    // limited by j0b's estimate; j2 compresses to now).
    assert_eq!(
        starts(&trace, SchedulerKind::ConservativeReanchor),
        vec![0, 0, 500, 100]
    );

    // HeadStart: the blocked 8-wide head stops the scan — j2 may NOT jump
    // it, and keeps its 1500 guarantee. The head itself starts at t=500.
    assert_eq!(
        starts(&trace, SchedulerKind::ConservativeHeadStart),
        vec![0, 0, 500, 1500]
    );

    // None: original guarantees throughout.
    assert_eq!(
        starts(&trace, SchedulerKind::ConservativeNoCompress),
        vec![0, 0, 1000, 1500]
    );
}

/// With accurate estimates these traces produce identical schedules under
/// every variant (the proptest law, pinned concretely here).
#[test]
fn scenarios_collapse_with_accurate_estimates() {
    let trace = Trace::new(
        "exact",
        8,
        vec![
            job(0, 0, 100, 100, 8),
            job(1, 1, 500, 500, 8),
            job(2, 2, 100, 100, 8),
        ],
    )
    .unwrap();
    let base = starts(&trace, SchedulerKind::Conservative);
    assert_eq!(base, vec![0, 100, 600]);
    for kind in [
        SchedulerKind::ConservativeReanchor,
        SchedulerKind::ConservativeHeadStart,
        SchedulerKind::ConservativeNoCompress,
    ] {
        assert_eq!(starts(&trace, kind), base);
    }
}
