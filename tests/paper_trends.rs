//! End-to-end reproduction checks: the paper's qualitative claims must
//! hold on freshly generated workloads, across seeds. These are the same
//! checks `EXPERIMENTS.md` documents, run at test scale.

use backfill_sim::prelude::*;

fn stats_for(
    source: TraceSource,
    estimate: EstimateModel,
    kind: SchedulerKind,
    policy: Policy,
) -> ScheduleStats {
    let scenario = Scenario {
        source,
        estimate,
        estimate_seed: 1,
        load: Some(0.9),
    };
    let schedule = simulate(&scenario.materialize(), kind, policy);
    schedule.validate().expect("audit");
    schedule.stats(&CategoryCriteria::default())
}

const CTC: TraceSource = TraceSource::Ctc {
    jobs: 4_000,
    seed: 42,
};
const SDSC: TraceSource = TraceSource::Sdsc {
    jobs: 4_000,
    seed: 42,
};

/// Figure 1: EASY with SJF or XFactor beats conservative on overall
/// average slowdown, on both traces.
#[test]
fn fig1_easy_sjf_xf_beat_conservative() {
    for source in [CTC, SDSC] {
        let cons = stats_for(
            source,
            EstimateModel::Exact,
            SchedulerKind::Conservative,
            Policy::Fcfs,
        );
        for policy in [Policy::Sjf, Policy::XFactor] {
            let easy = stats_for(source, EstimateModel::Exact, SchedulerKind::Easy, policy);
            assert!(
                easy.overall.avg_slowdown() < cons.overall.avg_slowdown(),
                "{source:?} {policy}: EASY {} !< conservative {}",
                easy.overall.avg_slowdown(),
                cons.overall.avg_slowdown()
            );
        }
    }
}

/// Section 4.1: conservative backfilling with accurate estimates is
/// priority-policy invariant (schedule fingerprints identical).
#[test]
fn sec41_priority_equivalence() {
    for source in [CTC, SDSC] {
        let scenario = Scenario::high_load(source);
        let trace = scenario.materialize();
        let fps: Vec<u64> = Policy::PAPER
            .iter()
            .map(|&p| simulate(&trace, SchedulerKind::Conservative, p).fingerprint())
            .collect();
        assert_eq!(fps[0], fps[1], "{source:?}: FCFS vs SJF diverged");
        assert_eq!(fps[1], fps[2], "{source:?}: SJF vs XF diverged");
    }
}

/// Figure 2: under accurate estimates, the long-narrow category benefits
/// from EASY relative to conservative (the paper's central category-wise
/// claim), under every priority policy.
#[test]
fn fig2_long_narrow_benefits_from_easy() {
    for policy in Policy::PAPER {
        let cons = stats_for(
            CTC,
            EstimateModel::Exact,
            SchedulerKind::Conservative,
            policy,
        );
        let easy = stats_for(CTC, EstimateModel::Exact, SchedulerKind::Easy, policy);
        let cons_ln = cons.category(Category::LN).avg_slowdown();
        let easy_ln = easy.category(Category::LN).avg_slowdown();
        assert!(
            easy_ln < cons_ln,
            "{policy}: LN slowdown {easy_ln} !< {cons_ln} (EASY should free long-narrow jobs)"
        );
    }
}

/// Figure 2, dual claim: short-wide jobs prefer conservative under FCFS
/// (reservations protect them from being overtaken).
#[test]
fn fig2_short_wide_prefers_conservative_under_fcfs() {
    let cons = stats_for(
        CTC,
        EstimateModel::Exact,
        SchedulerKind::Conservative,
        Policy::Fcfs,
    );
    let easy = stats_for(CTC, EstimateModel::Exact, SchedulerKind::Easy, Policy::Fcfs);
    let cons_sw = cons.category(Category::SW).avg_slowdown();
    let easy_sw = easy.category(Category::SW).avg_slowdown();
    assert!(
        easy_sw > cons_sw * 0.9,
        "SW should not improve materially under EASY/FCFS: {easy_sw} vs {cons_sw}"
    );
}

/// Table 4: worst-case turnaround under EASY/SJF exceeds conservative's
/// (unbounded delay risk), with accurate estimates.
#[test]
fn table4_easy_worst_case_is_worse() {
    let cons = stats_for(
        CTC,
        EstimateModel::Exact,
        SchedulerKind::Conservative,
        Policy::Sjf,
    );
    let easy = stats_for(CTC, EstimateModel::Exact, SchedulerKind::Easy, Policy::Sjf);
    assert!(
        easy.overall.worst_turnaround() > cons.overall.worst_turnaround(),
        "EASY/SJF worst {} !> conservative {}",
        easy.overall.worst_turnaround(),
        cons.overall.worst_turnaround()
    );
}

/// Tables 5/6: systematic overestimation improves conservative's average
/// slowdown markedly; EASY's response is much smaller in magnitude.
#[test]
fn tables56_overestimation_response() {
    let r1_cons = stats_for(
        CTC,
        EstimateModel::Exact,
        SchedulerKind::Conservative,
        Policy::Fcfs,
    );
    let r4_cons = stats_for(
        CTC,
        EstimateModel::systematic(4.0),
        SchedulerKind::Conservative,
        Policy::Fcfs,
    );
    assert!(
        r4_cons.overall.avg_slowdown() < r1_cons.overall.avg_slowdown() * 0.8,
        "conservative should gain >20% from R=4: {} vs {}",
        r4_cons.overall.avg_slowdown(),
        r1_cons.overall.avg_slowdown()
    );

    let r1_easy = stats_for(CTC, EstimateModel::Exact, SchedulerKind::Easy, Policy::Fcfs);
    let r4_easy = stats_for(
        CTC,
        EstimateModel::systematic(4.0),
        SchedulerKind::Easy,
        Policy::Fcfs,
    );
    let cons_gain = r1_cons.overall.avg_slowdown() - r4_cons.overall.avg_slowdown();
    let easy_gain = r1_easy.overall.avg_slowdown() - r4_easy.overall.avg_slowdown();
    assert!(
        cons_gain > easy_gain,
        "the overestimation effect must be more pronounced under conservative \
         (cons gain {cons_gain}, easy gain {easy_gain})"
    );
}

/// Figure 4 (EASY panel): with realistic noisy estimates, poorly estimated
/// jobs fare worse than they would with accurate estimates.
#[test]
fn fig4_poor_jobs_suffer_under_easy() {
    let user = EstimateModel::User(UserModelParams {
        exact_frac: 0.2,
        max_factor: 16.0,
        round_values: true,
        max_estimate: Some(SimSpan::from_hours(18)),
    });
    let scenario_user = Scenario {
        source: CTC,
        estimate: user,
        estimate_seed: 1,
        load: Some(0.9),
    };
    let scenario_exact = Scenario {
        source: CTC,
        estimate: EstimateModel::Exact,
        estimate_seed: 1,
        load: Some(0.9),
    };
    let trace_user = scenario_user.materialize();
    let trace_exact = scenario_exact.materialize();
    let poor: Vec<bool> = trace_user
        .jobs()
        .iter()
        .map(|j| EstimateQuality::of(j) == EstimateQuality::Poor)
        .collect();

    let mean_poor = |s: &Schedule| {
        let mut w = Welford::new();
        for o in &s.outcomes {
            if poor[o.id().0 as usize] {
                w.push(o.bounded_slowdown());
            }
        }
        w.mean()
    };
    let with_user = mean_poor(&simulate(&trace_user, SchedulerKind::Easy, Policy::Fcfs));
    let with_exact = mean_poor(&simulate(&trace_exact, SchedulerKind::Easy, Policy::Fcfs));
    assert!(
        with_user > with_exact,
        "poorly estimated jobs should worsen under EASY: {with_user} !> {with_exact}"
    );
}

/// The backfilling premise: both backfilling schemes crush the no-backfill
/// baseline at high load.
#[test]
fn backfilling_beats_no_backfill() {
    let nobf = stats_for(
        CTC,
        EstimateModel::Exact,
        SchedulerKind::NoBackfill,
        Policy::Fcfs,
    );
    for kind in [SchedulerKind::Conservative, SchedulerKind::Easy] {
        let s = stats_for(CTC, EstimateModel::Exact, kind, Policy::Fcfs);
        assert!(
            s.overall.avg_slowdown() < nobf.overall.avg_slowdown() / 2.0,
            "{kind:?} should at least halve the no-backfill slowdown"
        );
    }
}

/// Selective backfilling (the paper's Section 6 proposal) bounds the worst
/// case better than EASY/SJF while beating conservative-like averages.
#[test]
fn selective_interpolates() {
    let user = EstimateModel::User(UserModelParams {
        exact_frac: 0.2,
        max_factor: 16.0,
        round_values: true,
        max_estimate: Some(SimSpan::from_hours(18)),
    });
    let sel = stats_for(
        CTC,
        user,
        SchedulerKind::Selective { threshold: 2.0 },
        Policy::Fcfs,
    );
    let easy = stats_for(CTC, user, SchedulerKind::Easy, Policy::Fcfs);
    // Average slowdown within striking distance of EASY (not 10x worse).
    assert!(sel.overall.avg_slowdown() < easy.overall.avg_slowdown() * 3.0);
    // And it must schedule everything (already guaranteed by simulate).
    assert_eq!(sel.overall.count(), 4_000);
}
