//! Cross-crate pipeline tests: SWF persistence, determinism across thread
//! counts, schedule auditing, and config serialization — the plumbing a
//! downstream user relies on.

use backfill_sim::prelude::*;
use std::num::NonZeroUsize;
use workload::swf;

#[test]
fn swf_export_import_simulate_identical() {
    let trace = Scenario::high_load(TraceSource::Ctc { jobs: 800, seed: 3 }).materialize();
    let text = swf::write_trace(&trace);
    let parsed = swf::parse_trace(&text, trace.name(), None).expect("parse");
    assert_eq!(parsed.trace.jobs(), trace.jobs());
    let direct = simulate(&trace, SchedulerKind::Easy, Policy::XFactor);
    let via_swf = simulate(&parsed.trace, SchedulerKind::Easy, Policy::XFactor);
    assert_eq!(direct.fingerprint(), via_swf.fingerprint());
}

#[test]
fn run_all_is_thread_count_invariant() {
    let scenario = Scenario::high_load(TraceSource::Sdsc { jobs: 400, seed: 5 });
    let mut configs = Vec::new();
    for kind in [
        SchedulerKind::Conservative,
        SchedulerKind::Easy,
        SchedulerKind::NoBackfill,
    ] {
        for policy in Policy::PAPER {
            configs.push(RunConfig {
                scenario,
                kind,
                policy,
            });
        }
    }
    let one = run_all(&configs, NonZeroUsize::new(1));
    let many = run_all(&configs, NonZeroUsize::new(8));
    for (a, b) in one.iter().zip(&many) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.schedule.fingerprint(), b.schedule.fingerprint());
        assert_eq!(a.schedule.outcomes, b.schedule.outcomes);
    }
}

#[test]
fn every_schedule_passes_the_independent_audit() {
    let trace = Scenario::high_load(TraceSource::Ctc {
        jobs: 1_000,
        seed: 11,
    })
    .materialize();
    for kind in [
        SchedulerKind::NoBackfill,
        SchedulerKind::Conservative,
        SchedulerKind::ConservativeReanchor,
        SchedulerKind::ConservativeHeadStart,
        SchedulerKind::ConservativeNoCompress,
        SchedulerKind::Easy,
        SchedulerKind::Selective { threshold: 2.0 },
    ] {
        for policy in Policy::PAPER {
            let s = simulate(&trace, kind, policy);
            s.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.scheduler));
        }
    }
}

#[test]
fn estimate_noise_still_audits_cleanly() {
    let user = EstimateModel::User(UserModelParams::default());
    let scenario = Scenario {
        source: TraceSource::Ctc {
            jobs: 1_000,
            seed: 13,
        },
        estimate: user,
        estimate_seed: 99,
        load: Some(1.1), // deliberately overloaded
    };
    let trace = scenario.materialize();
    for kind in [SchedulerKind::Conservative, SchedulerKind::Easy] {
        let s = simulate(&trace, kind, Policy::Sjf);
        s.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", s.scheduler));
        // Overload means growing queues, but everything still completes.
        assert_eq!(s.outcomes.len(), 1_000);
    }
}

#[test]
fn configs_round_trip_through_json_and_rerun_identically() {
    let cfg = RunConfig {
        scenario: Scenario {
            source: TraceSource::Sdsc {
                jobs: 300,
                seed: 21,
            },
            estimate: EstimateModel::systematic(2.0),
            estimate_seed: 4,
            load: Some(0.85),
        },
        kind: SchedulerKind::Selective { threshold: 3.5 },
        policy: Policy::XFactor,
    };
    let json = serde_json::to_string_pretty(&cfg).expect("serialize");
    let back: RunConfig = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(cfg.run().fingerprint(), back.run().fingerprint());
}

#[test]
fn stats_are_reproducible_to_the_bit() {
    let scenario = Scenario::high_load(TraceSource::Ctc {
        jobs: 500,
        seed: 77,
    });
    let render = |s: &Schedule| {
        let stats = s.stats(&CategoryCriteria::default());
        format!(
            "{:?} {:?} {:?}",
            stats.overall.avg_slowdown(),
            stats.overall.avg_turnaround(),
            stats.utilization
        )
    };
    let a = render(&scenario.clone_run(SchedulerKind::Easy, Policy::XFactor));
    let b = render(&scenario.clone_run(SchedulerKind::Easy, Policy::XFactor));
    assert_eq!(a, b);
}

trait CloneRun {
    fn clone_run(&self, kind: SchedulerKind, policy: Policy) -> Schedule;
}
impl CloneRun for Scenario {
    fn clone_run(&self, kind: SchedulerKind, policy: Policy) -> Schedule {
        simulate(&self.materialize(), kind, policy)
    }
}
